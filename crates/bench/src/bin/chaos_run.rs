//! Run the pipeline under the standard chaos fault plan, write the
//! graceful-degradation health report to `results/health_report.json`
//! (`malnet.health_report` v1, documented in EXPERIMENTS.md), and
//! verify it: the report must parse, at least one injected failure must
//! have been quarantined into D-Health, and the study must still have
//! produced data. CI runs this on every push and uploads the artifact;
//! a chaos run that aborts — or that degrades *silently* — fails the
//! build.
//!
//! Usage:
//! `cargo run -p malnet-bench --release --bin chaos_run -- [--samples N] [--seed S] [--fault-seed N]`

use std::fmt::Write as _;

use malnet_bench::parse_args;
use malnet_botgen::world::{Calibration, World, WorldConfig};
use malnet_core::chaos::FaultPlan;
use malnet_core::{Pipeline, PipelineOpts};
use malnet_telemetry::{json, Telemetry};
use malnet_xray::report::json_escape;

/// Default fault seed of the CI chaos run (fixed: the injected faults —
/// and therefore the report — are byte-reproducible). Override with
/// `--fault-seed N`.
const FAULT_SEED: u64 = 7;

/// Fault-injection and degradation counters the report snapshots.
const FAULT_COUNTERS: &[&str] = &[
    "chaos.forced_panics",
    "chaos.binaries_mutated",
    "chaos.c2_downtime_windows",
    "chaos.emu_faults_injected",
    "chaos.emu_faulted_samples",
    "netsim.dns_faults_injected",
    "netsim.dns_queries",
    "pipeline.dns_resolutions",
    "netsim.packets_dropped",
    "pipeline.samples_quarantined",
    "pipeline.liveness_retries",
    "prober.syn_retries",
];

/// JSON object echoing every knob of the active [`FaultPlan`], so the
/// report alone reproduces the run (`chaos_run --seed S --fault-seed F`
/// against the recorded sample count).
fn fault_plan_json(p: &FaultPlan) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"fault_seed\":{},\"world_loss\":{},\"world_corrupt\":{},\
         \"contained_loss\":{},\"contained_corrupt\":{},\"dns_drop\":{},\
         \"dns_servfail\":{},\"dns_nxdomain\":{},\"c2_downtime_rate\":{},\
         \"c2_downtime_secs\":[{},{}],\"truncate_rate\":{},\"bitflip_rate\":{},\
         \"panic_rate\":{},\"link_jitter_rate\":{},\"link_jitter_ms\":[{},{}],\
         \"emu_short_rate\":{},\"emu_eintr_rate\":{},\"emu_enomem_rate\":{},\
         \"emu_fd_cap_rate\":{},\"emu_fd_cap\":[{},{}]}}",
        p.fault_seed,
        p.world_loss,
        p.world_corrupt,
        p.contained_loss,
        p.contained_corrupt,
        p.dns_drop,
        p.dns_servfail,
        p.dns_nxdomain,
        p.c2_downtime_rate,
        p.c2_downtime_secs.0,
        p.c2_downtime_secs.1,
        p.truncate_rate,
        p.bitflip_rate,
        p.panic_rate,
        p.link_jitter_rate,
        p.link_jitter_ms.0,
        p.link_jitter_ms.1,
        p.emu_short_rate,
        p.emu_eintr_rate,
        p.emu_enomem_rate,
        p.emu_fd_cap_rate,
        p.emu_fd_cap.0,
        p.emu_fd_cap.1,
    );
    s
}

fn main() {
    let mut opts = parse_args();
    if opts.samples == 1447 {
        opts.samples = 48; // CI-sized corpus; still hits every stage
    }
    let world = World::generate(WorldConfig {
        seed: opts.seed,
        n_samples: opts.samples,
        cal: Calibration::default(),
    });
    // Stream the chaos run's lifecycle (quarantine and chaos events
    // included) so CI can validate a fault-heavy event stream too.
    let events_path = std::path::Path::new("results/events_chaos.jsonl");
    let sink = malnet_telemetry::EventSink::create(events_path).expect("create event stream");
    let tel = Telemetry::enabled_with_events(sink);
    let fault_seed = opts.fault_seed.unwrap_or(FAULT_SEED);
    let plan = FaultPlan::chaos(fault_seed);
    let popts = PipelineOpts {
        seed: opts.seed,
        parallelism: 2,
        max_samples: Some(opts.samples),
        faults: plan,
        syn_retries: 1,
        ..PipelineOpts::fast()
    };
    let (data, _vendors) = Pipeline::with_telemetry(popts, tel.clone()).run(&world);
    let report = tel.report();
    println!("wrote {} (live event stream)", events_path.display());
    println!(
        "chaos run done: {} samples profiled, {} quarantined, {} degradation rows, {} C2s",
        data.samples.len(),
        data.health.quarantined(),
        data.health.rows.len(),
        data.c2s.len()
    );

    // --- assemble malnet.health_report v1 ---
    let mut out = String::new();
    out.push_str("{\"schema\":\"malnet.health_report\",\"version\":1,");
    let _ = write!(
        out,
        "\"samples\":{},\"seed\":{},\"fault_seed\":{fault_seed},",
        opts.samples, opts.seed
    );
    let _ = write!(out, "\"fault_plan\":{},", fault_plan_json(&plan));
    let _ = write!(
        out,
        "\"profiled\":{},\"quarantined\":{},",
        data.samples.len(),
        data.health.quarantined()
    );
    out.push_str("\"rows\":[");
    for (i, r) in data.health.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ctx = r
            .fault_context
            .iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect::<Vec<_>>()
            .join(",");
        let _ = write!(
            out,
            "{{\"sha256\":\"{}\",\"day\":{},\"kind\":\"{:?}\",\"detail\":\"{}\",\"fault_context\":[{ctx}]}}",
            json_escape(&r.sha256),
            r.day,
            r.kind,
            json_escape(&r.detail)
        );
    }
    out.push_str("],\"exit_counts\":{");
    for (i, (reason, n)) in data.health.exit_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{n}", json_escape(reason));
    }
    out.push_str("},\"fault_counters\":{");
    for (i, name) in FAULT_COUNTERS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{}", report.counter(name).unwrap_or(0));
    }
    out.push_str("}}");

    let path = std::path::Path::new("results/health_report.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, &out).expect("write health report");
    println!("wrote {} ({} bytes)", path.display(), out.len());

    // --- verification: re-read from disk, parse, check degradation ---
    let reread = std::fs::read_to_string(path).expect("re-read health report");
    let v = match json::parse(&reread) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: health report is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    let mut failures = Vec::new();
    if v.get("schema").and_then(|s| s.as_str()) != Some("malnet.health_report") {
        failures.push("schema field missing or wrong".to_string());
    }
    if v.get("version").and_then(|n| n.as_u64()) != Some(1) {
        failures.push("version field missing or wrong".to_string());
    }
    let quarantined = v.get("quarantined").and_then(|n| n.as_u64()).unwrap_or(0);
    if quarantined == 0 {
        failures.push("chaos run quarantined no samples (injection inert?)".to_string());
    }
    let profiled = v.get("profiled").and_then(|n| n.as_u64()).unwrap_or(0);
    if profiled == 0 {
        failures.push("chaos run profiled no samples (study degraded to nothing)".to_string());
    }
    let rows = v
        .get("rows")
        .and_then(|a| a.as_array())
        .map(<[_]>::len)
        .unwrap_or(0);
    if rows != data.health.rows.len() {
        failures.push(format!(
            "rows round-trip mismatch: wrote {}, re-read {rows}",
            data.health.rows.len()
        ));
    }
    if v.get("exit_counts").and_then(|o| o.get("exited")).is_none() {
        failures.push("exit_counts lost the healthy-exit tally".to_string());
    }
    for name in [
        "chaos.forced_panics",
        "netsim.dns_faults_injected",
        "chaos.emu_faults_injected",
    ] {
        if report.counter(name).unwrap_or(0) == 0 {
            failures.push(format!("fault counter {name:?} is zero — injection inert"));
        }
    }
    let echoed_seed = v
        .get("fault_plan")
        .and_then(|p| p.get("fault_seed"))
        .and_then(|n| n.as_u64());
    if echoed_seed != Some(fault_seed) {
        failures.push(format!(
            "fault_plan echo lost the seed: wrote {fault_seed}, re-read {echoed_seed:?}"
        ));
    }
    if v.get("fault_plan")
        .and_then(|p| p.get("emu_short_rate"))
        .and_then(json::Value::as_f64)
        .unwrap_or(0.0)
        <= 0.0
    {
        failures.push("fault_plan echo lost the emulator rates".to_string());
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "health report OK: {quarantined} quarantined, {rows} degradation rows, {} exit classes",
        data.health.exit_counts.len()
    );
    for r in &data.health.rows {
        println!(
            "  day {:>3} {:<16} {:?} {}",
            r.day,
            &r.sha256[..16.min(r.sha256.len())],
            r.kind,
            r.detail
        );
    }
}
