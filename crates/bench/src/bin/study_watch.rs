//! Watch (or validate) a live `malnet.events` v1 stream.
//!
//! The pipeline streams lifecycle events to `results/events.jsonl` as a
//! study runs (see `malnet_telemetry::events` and EXPERIMENTS.md);
//! `study_watch` is the consumer:
//!
//! * **Default**: read the stream once and render a progress summary —
//!   days completed, samples analyzed, instructions retired, per-day
//!   rollup table, quarantine/chaos tallies.
//! * **`--follow`**: tail the file, re-rendering as new complete lines
//!   arrive, until the stream's `stream_end` line lands (the one place
//!   in the workspace that legitimately sleeps on a wall clock; the
//!   bench crate is `source_lint`'s clock-exempt zone). The tail is
//!   **stateful** ([`StreamTail`]): each tick reads only the bytes
//!   appended since the last one and folds them incrementally, so a
//!   long study costs O(stream) total instead of the old
//!   re-read-and-refold-everything O(stream²). A torn trailing line
//!   (observed between the sink's write and flush) is carried, not
//!   folded, until its newline arrives; a shrinking file (truncation /
//!   rotation) resets the tail and starts over.
//! * **`--validate`**: strict mode for CI — the stream must be complete
//!   and well-formed ([`validate_stream`]), and, when a final report is
//!   present (`--report`, default `results/run_report.json`), folding
//!   the stream must reconstruct the report's counters and rollup rows
//!   exactly ([`fold_matches_report`]). Exit code 1 on any violation.
//!   `--stream-only` skips the report cross-check for runs that don't
//!   write a `malnet.run_report` artifact (e.g. the chaos job).
//!
//! Usage:
//! `study_watch [--events PATH] [--report PATH] [--validate] [--stream-only] [--follow]`

use std::io::{Read, Seek, SeekFrom};

use malnet_telemetry::events::{fold_matches_report, validate_stream, StreamSummary, StreamTail};
use malnet_telemetry::RunReport;

struct Args {
    events: String,
    report: String,
    validate: bool,
    stream_only: bool,
    follow: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        events: "results/events.jsonl".to_string(),
        report: "results/run_report.json".to_string(),
        validate: false,
        stream_only: false,
        follow: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--events" => args.events = it.next().expect("--events needs a path"),
            "--report" => args.report = it.next().expect("--report needs a path"),
            "--validate" => args.validate = true,
            "--stream-only" => args.stream_only = true,
            "--follow" => args.follow = true,
            other => {
                eprintln!(
                    "unknown argument {other:?}\n\
                     usage: study_watch [--events PATH] [--report PATH] [--validate] \
                     [--stream-only] [--follow]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Render a one-screen progress summary of a (possibly still growing)
/// stream. `complete` is whether `stream_end` has arrived.
fn render(summary: &StreamSummary, complete: bool) {
    let state = if complete { "complete" } else { "running" };
    println!(
        "study {state}: {} event(s), {} day(s) started, {} sample(s) completed",
        summary.events,
        summary.days.len(),
        summary.samples_completed
    );
    let counter = |name: &str| {
        summary
            .final_counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    if let Some(instr) = counter("sandbox.instructions_retired") {
        println!("  instructions retired: {instr}");
    }
    if let Some(vtime) = counter("sandbox.vtime_secs") {
        println!("  simulated sandbox time: {vtime} s");
    }
    if summary.quarantines > 0 || summary.chaos_events > 0 {
        println!(
            "  quarantines: {}, chaos events: {}",
            summary.quarantines, summary.chaos_events
        );
    }
    let day_rows: Vec<&(String, Vec<(String, u64)>)> = summary
        .rollups
        .iter()
        .filter(|(key, _)| key == "day")
        .collect();
    if !day_rows.is_empty() {
        println!("  last day rollups:");
        for (_, fields) in day_rows.iter().rev().take(5).rev() {
            let row: Vec<String> = fields.iter().map(|(n, v)| format!("{n}={v}")).collect();
            println!("    {}", row.join(" "));
        }
    }
}

/// Read the bytes appended to `path` since `offset` and feed them into
/// the tail. Returns the new offset. A file shorter than `offset`
/// (truncated or rotated mid-watch) resets the tail and re-reads from
/// the start, so the watcher converges on the new stream instead of
/// folding a stale suffix.
fn tail_step(path: &str, tail: &mut StreamTail, offset: u64) -> u64 {
    let Ok(mut f) = std::fs::File::open(path) else {
        return offset; // not created yet — keep waiting
    };
    let len = f.metadata().map(|m| m.len()).unwrap_or(0);
    let mut offset = offset;
    if len < offset {
        *tail = StreamTail::new();
        offset = 0;
    }
    if len == offset {
        return offset;
    }
    if f.seek(SeekFrom::Start(offset)).is_err() {
        return offset;
    }
    let mut fresh = String::new();
    let Ok(n) = f.read_to_string(&mut fresh) else {
        return offset; // torn read; retry next tick
    };
    tail.push(&fresh);
    offset + n as u64
}

fn main() {
    let args = parse_args();
    if args.validate {
        let text = match std::fs::read_to_string(&args.events) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL: cannot read {}: {e}", args.events);
                std::process::exit(1);
            }
        };
        let summary = match validate_stream(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "FAIL: {} is not a valid malnet.events stream: {e}",
                    args.events
                );
                std::process::exit(1);
            }
        };
        render(&summary, true);
        if args.stream_only {
            println!(
                "stream OK: {} ({} events, report cross-check skipped)",
                args.events, summary.events
            );
            return;
        }
        match std::fs::read_to_string(&args.report) {
            Ok(report_text) => {
                let report = match RunReport::from_json(&report_text) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("FAIL: cannot parse {}: {e}", args.report);
                        std::process::exit(1);
                    }
                };
                if let Err(e) = fold_matches_report(&summary, &report) {
                    eprintln!("FAIL: {e}");
                    std::process::exit(1);
                }
                println!(
                    "fold OK: stream reconstructs {} counter(s) and {} rollup row(s) of {}",
                    summary.final_counters.len(),
                    summary.rollups.len(),
                    args.report
                );
            }
            Err(_) => {
                // No report alongside the stream (e.g. the chaos job):
                // well-formedness alone is the contract.
                println!("no report at {} — validated stream only", args.report);
            }
        }
        println!("stream OK: {} ({} events)", args.events, summary.events);
        return;
    }

    if args.follow {
        // Live tail: poll for appended bytes until stream_end. Each
        // tick folds only the new bytes (see `tail_step`). Wall-clock
        // sleeping is fine here — the watcher observes the study, it is
        // not part of it.
        let mut tail = StreamTail::new();
        let mut offset = 0u64;
        loop {
            offset = tail_step(&args.events, &mut tail, offset);
            render(tail.summary(), tail.is_complete());
            if tail.is_complete() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(500));
        }
    }

    let text = match std::fs::read_to_string(&args.events) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.events);
            std::process::exit(1);
        }
    };
    let mut tail = StreamTail::new();
    tail.push(&text);
    tail.flush_partial();
    render(tail.summary(), tail.is_complete());
}
