//! Watch (or validate) a live `malnet.events` v1 stream.
//!
//! The pipeline streams lifecycle events to `results/events.jsonl` as a
//! study runs (see `malnet_telemetry::events` and EXPERIMENTS.md);
//! `study_watch` is the consumer:
//!
//! * **Default**: read the stream once and render a progress summary —
//!   days completed, samples analyzed, instructions retired, per-day
//!   rollup table, quarantine/chaos tallies.
//! * **`--follow`**: tail the file, re-rendering as new complete lines
//!   arrive, until the stream's `stream_end` line lands (the one place
//!   in the workspace that legitimately sleeps on a wall clock; the
//!   bench crate is `source_lint`'s clock-exempt zone).
//! * **`--validate`**: strict mode for CI — the stream must be complete
//!   and well-formed ([`validate_stream`]), and, when a final report is
//!   present (`--report`, default `results/run_report.json`), folding
//!   the stream must reconstruct the report's counters and rollup rows
//!   exactly ([`fold_matches_report`]). Exit code 1 on any violation.
//!   `--stream-only` skips the report cross-check for runs that don't
//!   write a `malnet.run_report` artifact (e.g. the chaos job).
//!
//! Usage:
//! `study_watch [--events PATH] [--report PATH] [--validate] [--stream-only] [--follow]`

use malnet_telemetry::events::{
    fold_matches_report, parse_event_line, validate_stream, StreamSummary,
};
use malnet_telemetry::RunReport;

struct Args {
    events: String,
    report: String,
    validate: bool,
    stream_only: bool,
    follow: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        events: "results/events.jsonl".to_string(),
        report: "results/run_report.json".to_string(),
        validate: false,
        stream_only: false,
        follow: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--events" => args.events = it.next().expect("--events needs a path"),
            "--report" => args.report = it.next().expect("--report needs a path"),
            "--validate" => args.validate = true,
            "--stream-only" => args.stream_only = true,
            "--follow" => args.follow = true,
            other => {
                eprintln!(
                    "unknown argument {other:?}\n\
                     usage: study_watch [--events PATH] [--report PATH] [--validate] \
                     [--stream-only] [--follow]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Render a one-screen progress summary of a (possibly still growing)
/// stream. `complete` is whether `stream_end` has arrived.
fn render(summary: &StreamSummary, complete: bool) {
    let state = if complete { "complete" } else { "running" };
    println!(
        "study {state}: {} event(s), {} day(s) started, {} sample(s) completed",
        summary.events,
        summary.days.len(),
        summary.samples_completed
    );
    let counter = |name: &str| {
        summary
            .final_counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    if let Some(instr) = counter("sandbox.instructions_retired") {
        println!("  instructions retired: {instr}");
    }
    if let Some(vtime) = counter("sandbox.vtime_secs") {
        println!("  simulated sandbox time: {vtime} s");
    }
    if summary.quarantines > 0 || summary.chaos_events > 0 {
        println!(
            "  quarantines: {}, chaos events: {}",
            summary.quarantines, summary.chaos_events
        );
    }
    let day_rows: Vec<&(String, Vec<(String, u64)>)> = summary
        .rollups
        .iter()
        .filter(|(key, _)| key == "day")
        .collect();
    if !day_rows.is_empty() {
        println!("  last day rollups:");
        for (_, fields) in day_rows.iter().rev().take(5).rev() {
            let row: Vec<String> = fields.iter().map(|(n, v)| format!("{n}={v}")).collect();
            println!("    {}", row.join(" "));
        }
    }
}

/// Lenient fold of a possibly-incomplete stream for the live renderer:
/// fold every line that parses, stop at the first that doesn't (a
/// trailing partial line is expected mid-run — the sink flushes whole
/// lines, so only the file's tail can be torn). No structural checks
/// here; `--validate` uses the strict [`validate_stream`] path.
fn fold_prefix(text: &str) -> (StreamSummary, bool) {
    let mut summary = StreamSummary::default();
    let mut complete = false;
    for line in text.lines() {
        let Ok(ev) = parse_event_line(line) else {
            break;
        };
        summary.events += 1;
        match ev.kind.as_str() {
            "stream_end" => complete = true,
            "day_start" => summary.days.extend(ev.u64("day")),
            "heartbeat" => {
                summary.heartbeats += 1;
                if let Some(done) = ev.u64("samples_completed") {
                    summary.samples_completed = done;
                }
            }
            "counters" => {
                summary.final_counters = ev
                    .fields
                    .iter()
                    .filter_map(|(n, v)| v.as_u64().map(|v| (n.clone(), v)))
                    .collect();
            }
            "rollup" => {
                if let Some(key) = ev.key.clone() {
                    let fields = ev
                        .fields
                        .iter()
                        .filter_map(|(n, v)| v.as_u64().map(|v| (n.clone(), v)))
                        .collect();
                    summary.rollups.push((key, fields));
                }
            }
            "quarantine" => summary.quarantines += 1,
            "chaos" => summary.chaos_events += 1,
            _ => {}
        }
    }
    (summary, complete)
}

fn main() {
    let args = parse_args();
    if args.validate {
        let text = match std::fs::read_to_string(&args.events) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL: cannot read {}: {e}", args.events);
                std::process::exit(1);
            }
        };
        let summary = match validate_stream(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "FAIL: {} is not a valid malnet.events stream: {e}",
                    args.events
                );
                std::process::exit(1);
            }
        };
        render(&summary, true);
        if args.stream_only {
            println!(
                "stream OK: {} ({} events, report cross-check skipped)",
                args.events, summary.events
            );
            return;
        }
        match std::fs::read_to_string(&args.report) {
            Ok(report_text) => {
                let report = match RunReport::from_json(&report_text) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("FAIL: cannot parse {}: {e}", args.report);
                        std::process::exit(1);
                    }
                };
                if let Err(e) = fold_matches_report(&summary, &report) {
                    eprintln!("FAIL: {e}");
                    std::process::exit(1);
                }
                println!(
                    "fold OK: stream reconstructs {} counter(s) and {} rollup row(s) of {}",
                    summary.final_counters.len(),
                    summary.rollups.len(),
                    args.report
                );
            }
            Err(_) => {
                // No report alongside the stream (e.g. the chaos job):
                // well-formedness alone is the contract.
                println!("no report at {} — validated stream only", args.report);
            }
        }
        println!("stream OK: {} ({} events)", args.events, summary.events);
        return;
    }

    if args.follow {
        // Live tail: poll for appended complete lines until stream_end.
        // Wall-clock sleeping is fine here — the watcher observes the
        // study, it is not part of it.
        loop {
            let text = std::fs::read_to_string(&args.events).unwrap_or_default();
            let (summary, complete) = fold_prefix(&text);
            render(&summary, complete);
            if complete {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(500));
        }
    }

    let text = match std::fs::read_to_string(&args.events) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.events);
            std::process::exit(1);
        }
    };
    let (summary, complete) = fold_prefix(&text);
    render(&summary, complete);
}
