//! Regenerates the paper's repro-all from a full pipeline run.
//! Usage: `cargo run -p malnet-bench --release --bin repro-all -- [--samples N] [--seed S] [--fast]`

use malnet_bench::{parse_args, render, run_study};

fn main() {
    let opts = parse_args();
    let (world, data, vendors) = run_study(&opts);
    let late = malnet_netsim::time::STUDY_DAYS + 45;
    let _ = (&world, &vendors, late);
    print!("{}", render::all(&world, &data, &vendors, late));
}
