//! Ablation sweeps for the design knobs DESIGN.md calls out.
//!
//! * handshaker threshold (paper: 20 distinct addresses per port)
//! * behavioural DDoS threshold (paper: 100 pps)
//! * probe cadence (paper: 4 hours)
//! * AV corroboration bar (paper: 5 engines)
//!
//! Usage: `cargo run -p malnet-bench --release --bin ablations -- [--samples N]`

use malnet_bench::parse_args;
use malnet_botgen::world::{Calibration, World, WorldConfig};
use malnet_core::prober::{run_probing, ProbeConfig};
use malnet_core::{Pipeline, PipelineOpts};
use malnet_intel::engines::EngineModel;
use malnet_protocols::Family;

fn main() {
    let mut opts = parse_args();
    if opts.samples == 1447 {
        opts.samples = 120; // ablations sweep many runs; keep each small
    }
    let world = World::generate(WorldConfig {
        seed: opts.seed,
        n_samples: opts.samples,
        cal: Calibration::default(),
    });

    println!("== Ablation 1: handshaker threshold (paper: 20) ==");
    println!(
        "{:>10} {:>18} {:>14}",
        "threshold", "exploit samples", "payloads"
    );
    for threshold in [1usize, 5, 20, 60, 200] {
        let p = PipelineOpts {
            handshaker_threshold: threshold,
            max_samples: Some(opts.samples),
            run_probing: false,
            restricted_secs: 60, // exploits only; skip long sessions
            ..PipelineOpts::fast()
        };
        let (data, _) = Pipeline::new(p).run(&world);
        println!(
            "{:>10} {:>18} {:>14}",
            threshold,
            data.exploit_sample_count(),
            data.exploits.len()
        );
    }
    println!("(higher thresholds delay victim impersonation until more of the pool is scanned;\n past the pool size, no exploits are ever captured)");

    println!("\n== Ablation 2: behavioural DDoS threshold (paper: 100 pps) ==");
    println!(
        "{:>10} {:>10} {:>22}",
        "pps", "commands", "behavioural detections"
    );
    for pps in [10u64, 50, 100, 300, 1000] {
        let p = PipelineOpts {
            pps_threshold: pps,
            max_samples: Some(opts.samples),
            run_probing: false,
            ..PipelineOpts::fast()
        };
        let (data, _) = Pipeline::new(p).run(&world);
        let behavioural = data
            .ddos
            .iter()
            .filter(|d| {
                matches!(
                    d.detection,
                    malnet_core::datasets::DdosDetection::Behavioral
                        | malnet_core::datasets::DdosDetection::Both
                )
            })
            .count();
        println!("{:>10} {:>10} {:>22}", pps, data.ddos.len(), behavioural);
    }
    println!(
        "(below bot flood rates the heuristic corroborates the profiler; above them it goes blind)"
    );

    println!("\n== Ablation 3: probe cadence (paper: 6/day = 4 h) ==");
    let weapons: Vec<Vec<u8>> = [Family::Mirai, Family::Gafgyt]
        .iter()
        .filter_map(|f| {
            world
                .samples
                .iter()
                .find(|s| {
                    s.family == *f && !s.corrupted && s.spec.exploits.is_empty() && !s.spec.evasive
                })
                .map(|s| s.elf.clone())
        })
        .collect();
    println!(
        "{:>12} {:>8} {:>10} {:>16}",
        "probes/day", "servers", "responses", "resp/probe-day"
    );
    for per_day in [1u32, 2, 6, 12] {
        let cfg = ProbeConfig {
            rounds: per_day * 4, // four virtual days each
            rounds_per_day: per_day,
            hosts_per_subnet: 40,
            ..ProbeConfig::from_world(&world)
        };
        let probed = run_probing(
            &world,
            &weapons,
            &cfg,
            opts.seed,
            &malnet_telemetry::Telemetry::disabled(),
        );
        let responses: usize = probed.iter().map(|p| p.responses()).sum();
        println!(
            "{:>12} {:>8} {:>10} {:>16.2}",
            per_day,
            probed.len(),
            responses,
            responses as f64 / 4.0
        );
    }
    println!(
        "(sparse cadences miss elusive servers entirely — the paper's case for persistent probing)"
    );

    println!("\n== Ablation 4: AV corroboration bar (paper: 5 engines) ==");
    println!("{:>6} {:>12}", "bar", "corpus kept");
    let model = EngineModel::new(opts.seed);
    let detections: Vec<u32> = (0..2000)
        .map(|id| model.detections_for_malware(0, id))
        .collect();
    for bar in [1u32, 3, 5, 10, 30, 50] {
        let kept = detections.iter().filter(|&&d| d >= bar).count();
        println!(
            "{:>6} {:>11.1}%",
            bar,
            kept as f64 * 100.0 / detections.len() as f64
        );
    }
    println!(
        "(5 engines keeps ~98% of true malware; aggressive bars shed fresh low-consensus samples)"
    );
}
