//! Regenerates the paper's table1 from a full pipeline run.
//! Usage: `cargo run -p malnet-bench --release --bin table1 -- [--samples N] [--seed S] [--fast]`

use malnet_bench::{parse_args, render, run_study};

fn main() {
    let opts = parse_args();
    let (world, data, vendors) = run_study(&opts);
    let late = malnet_netsim::time::STUDY_DAYS + 45;
    let _ = (&world, &vendors, late);
    print!("{}", render::table1(&data));
}
