//! Run the pipeline's `fast()` config with telemetry enabled, write the
//! JSON run report to `results/run_report.json` (plus the live
//! `malnet.events` stream to `results/events.jsonl` and a Chrome
//! trace-event export of the span tree to `results/trace.json`), and
//! verify the report: it must parse (with `malnet_telemetry::json`),
//! contain every stage the pipeline is supposed to instrument, and its
//! rollup rows must be well-formed (`day` keys present and strictly
//! increasing, no duplicate field names) so a mis-merged day-shard is
//! caught here instead of during analysis. CI runs this on every push,
//! validates the stream with `study_watch --validate`, and uploads the
//! artifacts; any failure fails the build.
//!
//! Usage:
//! `cargo run -p malnet-bench --release --bin run_report -- [--samples N] [--seed S]`

use malnet_bench::parse_args;
use malnet_botgen::world::{Calibration, World, WorldConfig};
use malnet_core::{Pipeline, PipelineOpts};
use malnet_telemetry::{json, trace, EventSink, RunReport, Telemetry};

/// Spans the instrumented pipeline must have entered at least once on a
/// corpus that exercises every stage.
const EXPECTED_SPANS: &[&str] = &[
    "pipeline.run",
    "pipeline.day",
    "pipeline.phase_a",
    "pipeline.phase_b",
    "pipeline.contained_sample",
    "pipeline.static_triage",
    "pipeline.merge",
    "pipeline.restricted_session",
    "pipeline.ddos_eavesdrop",
    "pipeline.liveness_sweep",
    "pipeline.probing",
    "pipeline.late_query",
    "prober.round",
    "sandbox.exec",
];

/// Counters that must be present and non-zero.
const EXPECTED_COUNTERS: &[&str] = &[
    "pipeline.samples_analyzed",
    "pipeline.samples_activated",
    "pipeline.c2_candidates",
    "pipeline.c2_detected",
    "xray.samples_triaged",
    "xray.endpoints_extracted",
    "prober.probes_sent",
    "sandbox.instructions_retired",
    "sandbox.syscalls_serviced",
    "netsim.packets_delivered",
    "netsim.dns_queries",
    "wire.pcap_bytes_encoded",
    "wire.pcap_records_encoded",
];

/// Rollup well-formedness: no row may carry a duplicate field name, and
/// the `day`-keyed rows (one per study day with activity) must each
/// carry a `day` field whose values strictly increase in arrival order.
/// A mis-merged day-shard (duplicated or reordered rows) trips this in
/// CI instead of surfacing as a silent analysis artifact.
fn rollup_failures(report: &RunReport) -> Vec<String> {
    let mut failures = Vec::new();
    let mut last_day: Option<u64> = None;
    for (i, (key, fields)) in report.rollups.iter().enumerate() {
        for (j, (name, _)) in fields.iter().enumerate() {
            if fields[..j].iter().any(|(n, _)| n == name) {
                failures.push(format!(
                    "rollup row {i} (key {key:?}) has duplicate field {name:?}"
                ));
            }
        }
        if key == "day" {
            match fields.iter().find(|(n, _)| n == "day").map(|&(_, v)| v) {
                None => failures.push(format!("day rollup row {i} lacks a \"day\" field")),
                Some(day) => {
                    if last_day.is_some_and(|prev| day <= prev) {
                        failures.push(format!(
                            "day rollup row {i}: day {day} does not increase (previous {last_day:?})"
                        ));
                    }
                    last_day = Some(day);
                }
            }
        }
    }
    failures
}

fn main() {
    let mut opts = parse_args();
    if opts.samples == 1447 {
        opts.samples = 48; // CI-sized corpus; still hits every stage
    }
    let world = World::generate(WorldConfig {
        seed: opts.seed,
        n_samples: opts.samples,
        cal: Calibration::default(),
    });
    let events_path = std::path::Path::new("results/events.jsonl");
    let sink = EventSink::create(events_path).expect("create event stream");
    let tel = Telemetry::enabled_with_events(sink);
    let popts = PipelineOpts {
        seed: opts.seed,
        parallelism: 2,
        max_samples: Some(opts.samples),
        ..PipelineOpts::fast()
    };
    let (data, _vendors) = Pipeline::with_telemetry(popts, tel.clone()).run(&world);
    println!(
        "pipeline done: {} samples, {} C2s, {} exploits, {} DDoS records",
        data.samples.len(),
        data.c2s.len(),
        data.exploits.len(),
        data.ddos.len()
    );

    let report = tel.report();
    let json_text = report.to_json();
    let path = std::path::Path::new("results/run_report.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, &json_text).expect("write run report");
    println!("wrote {} ({} bytes)", path.display(), json_text.len());
    println!("wrote {} (live event stream)", events_path.display());

    let trace_path = std::path::Path::new("results/trace.json");
    let trace_text = trace::chrome_trace(&report);
    std::fs::write(trace_path, &trace_text).expect("write trace export");
    println!(
        "wrote {} ({} bytes)",
        trace_path.display(),
        trace_text.len()
    );

    // --- verification: re-read from disk, parse, check stage coverage ---
    let reread = std::fs::read_to_string(path).expect("re-read run report");
    let v = match json::parse(&reread) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: run report is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    let mut failures = Vec::new();
    if v.get("schema").and_then(|s| s.as_str()) != Some("malnet.run_report") {
        failures.push("schema field missing or wrong".to_string());
    }
    if v.get("version").and_then(|n| n.as_u64()) != Some(1) {
        failures.push("version field missing or wrong".to_string());
    }
    let span_names: Vec<String> = v
        .get("spans")
        .and_then(|a| a.as_array())
        .map(|spans| {
            spans
                .iter()
                .filter_map(|s| s.get("name").and_then(|n| n.as_str()).map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    for name in EXPECTED_SPANS {
        if !span_names.iter().any(|s| s == name) {
            failures.push(format!("missing span {name:?}"));
        }
    }
    for name in EXPECTED_COUNTERS {
        match report.counter(name) {
            None => failures.push(format!("missing counter {name:?}")),
            Some(0) => failures.push(format!("counter {name:?} is zero")),
            Some(_) => {}
        }
    }
    if report.histogram("sandbox.instructions_per_run").is_none() {
        failures.push("missing histogram \"sandbox.instructions_per_run\"".to_string());
    }
    if report.rollups.is_empty() {
        failures.push("no per-day rollups".to_string());
    }
    failures.extend(rollup_failures(&report));
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }

    println!(
        "run report OK: {} spans, {} counters, {} histograms, {} rollups",
        report.spans.len(),
        report.counters.len(),
        report.histograms.len(),
        report.rollups.len()
    );
    for name in EXPECTED_SPANS {
        if let Some(s) = report.span(name) {
            println!(
                "  {:<28} calls {:>6}  total {:>10} µs  self {:>10} µs",
                s.name, s.calls, s.total_us, s.self_us
            );
        }
    }
}
