//! A minimal, dependency-free timing harness.
//!
//! The offline build has no criterion, so the component benches use
//! this instead: auto-calibrated iteration counts, a handful of batches
//! per bench, and a best/median/mean report. It intentionally mirrors
//! the small slice of the criterion API the benches need (`bench`,
//! `bench_batched`), so the bench bodies read the same.
//!
//! Modes follow the cargo convention: `cargo bench` passes `--bench` to
//! the target, which selects full measurement; any other invocation
//! (notably `cargo test`, which builds and runs bench targets) gets a
//! one-iteration smoke run so the suite stays fast.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Bench name, e.g. `wire/tcp_frame_encode`.
    pub name: String,
    /// Fastest observed batch, per iteration.
    pub best: Duration,
    /// Median batch, per iteration.
    pub median: Duration,
    /// Mean over all batches, per iteration.
    pub mean: Duration,
    /// Iterations per batch the calibration settled on.
    pub iters: u64,
    /// Operations performed by one iteration (1 for plain benches; the
    /// loop/op count for scaled and counted benches). Reported times
    /// are divided by this, so a row always reads per-*operation*.
    pub ops: u64,
    /// `true` for counted benches (the op count was measured, not
    /// declared): the JSON row gains an `instr_per_sec` field.
    pub counted: bool,
}

impl Row {
    /// Median time per operation, in (possibly fractional) nanoseconds.
    pub fn median_ns_per_op(&self) -> f64 {
        self.median.as_nanos() as f64 / self.ops as f64
    }
}

/// Timing harness: collects rows and prints a report.
pub struct Harness {
    /// Target wall time per bench (all batches together).
    target: Duration,
    /// Number of batches to measure per bench.
    batches: usize,
    /// `true` under `cargo bench` (`--bench` in argv); `false` means
    /// smoke mode: one iteration per bench, no report table.
    measure: bool,
    /// `--filter <substr>`: only run benches whose name contains this.
    filter: Option<String>,
    rows: Vec<Row>,
    /// Derived scalar metrics (e.g. a speedup ratio) recorded via
    /// [`Harness::record_derived`]; serialized alongside the rows.
    derived: Vec<(String, f64)>,
}

impl Harness {
    /// Build a harness from argv; see the module docs for the modes.
    /// `--filter <substr>` (or `--filter=<substr>`) restricts the run
    /// to benches whose name contains the substring.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let measure = args.iter().any(|a| a == "--bench");
        let mut filter = None;
        for (i, a) in args.iter().enumerate() {
            if let Some(rest) = a.strip_prefix("--filter=") {
                filter = Some(rest.to_string());
            } else if a == "--filter" {
                filter = args.get(i + 1).cloned();
            }
        }
        Harness {
            target: Duration::from_millis(1500),
            batches: 5,
            measure,
            filter,
            rows: Vec::new(),
            derived: Vec::new(),
        }
    }

    /// Whether full measurement is on (as opposed to smoke mode).
    pub fn measuring(&self) -> bool {
        self.measure
    }

    /// `true` if `--filter` excludes this bench (logs the skip).
    fn filtered_out(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) if !name.contains(f.as_str()) => {
                println!("skip  {name} (filtered)");
                true
            }
            _ => false,
        }
    }

    /// Time `f`, auto-calibrating the iteration count so one batch
    /// takes roughly `target / batches`.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.bench_scaled(name, 1, f);
    }

    /// Like [`Harness::bench`] for bodies that perform `ops` identical
    /// operations per call (an unrolled inner loop): the reported times
    /// are per *operation*, so sub-iteration costs (a ~0.5 ns branch)
    /// aren't inflated by the loop trip count.
    pub fn bench_scaled<R>(&mut self, name: &str, ops: u64, mut f: impl FnMut() -> R) {
        if self.filtered_out(name) {
            return;
        }
        if !self.measure {
            black_box(f());
            println!("smoke {name}: ok");
            return;
        }
        // Calibrate: time a single call, derive iterations per batch.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_batch = self.target / self.batches as u32;
        let iters = (per_batch.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;
        let mut samples = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        self.push_row(name, iters, samples, ops, false);
    }

    /// Like [`Harness::bench`], but re-creates state with `setup` before
    /// every iteration and times only `f` (criterion's `iter_batched`).
    pub fn bench_batched<S, R>(
        &mut self,
        name: &str,
        setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) {
        self.bench_batched_counted(name, setup, |s| {
            black_box(f(s));
            1
        });
    }

    /// Like [`Harness::bench_batched`], for bodies that *report* how
    /// many operations one iteration performed (e.g. retired guest
    /// instructions): times are per operation, and the JSON row gains
    /// an `instr_per_sec` throughput field.
    pub fn bench_batched_counted<S>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> u64,
    ) {
        if self.filtered_out(name) {
            return;
        }
        if !self.measure {
            black_box(f(setup()));
            println!("smoke {name}: ok");
            return;
        }
        let input = setup();
        let t0 = Instant::now();
        let ops = black_box(f(input)).max(1);
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_batch = self.target / self.batches as u32;
        let iters = (per_batch.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let inputs: Vec<S> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(f(input));
            }
            samples.push(start.elapsed() / iters as u32);
        }
        self.push_row(name, iters, samples, ops, ops > 1);
    }

    /// Record a derived scalar metric (e.g. `mips.block_speedup`) for
    /// the report table and the JSON artifact's `derived` object.
    pub fn record_derived(&mut self, name: &str, value: f64) {
        self.derived.push((name.to_string(), value));
    }

    /// Median per-operation time of a measured row, in nanoseconds.
    /// `None` in smoke mode or if the row was filtered out.
    pub fn median_ns_per_op(&self, name: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.name == name)
            .map(Row::median_ns_per_op)
    }

    fn push_row(
        &mut self,
        name: &str,
        iters: u64,
        mut samples: Vec<Duration>,
        ops: u64,
        counted: bool,
    ) {
        samples.sort();
        let best = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let per_iter = if ops > 1 {
            format!(", {ops} ops/iter")
        } else {
            String::new()
        };
        println!(
            "{name:<34} best {:>12} median {:>12} ({iters} iters/batch{per_iter})",
            fmt_ns(best.as_nanos() as f64 / ops as f64),
            fmt_ns(median.as_nanos() as f64 / ops as f64),
        );
        self.rows.push(Row {
            name: name.to_string(),
            best,
            median,
            mean,
            iters,
            ops,
            counted,
        });
    }

    /// Serialize the measured rows as a `malnet.bench` v2 JSON document
    /// (the `BENCH_*.json` artifact format; see EXPERIMENTS.md). The
    /// `*_ns` values are per *operation* (fractional for scaled rows);
    /// counted rows additionally carry `ops_per_iter` and
    /// `instr_per_sec`, and derived metrics land in `derived`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"schema\":\"malnet.bench\",\"version\":2,\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ops = r.ops as f64;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"best_ns\":{},\"median_ns\":{},\"mean_ns\":{},\"iters\":{}",
                r.name.replace('\\', "\\\\").replace('"', "\\\""),
                json_num(r.best.as_nanos() as f64 / ops),
                json_num(r.median.as_nanos() as f64 / ops),
                json_num(r.mean.as_nanos() as f64 / ops),
                r.iters
            );
            if r.ops > 1 {
                let _ = write!(out, ",\"ops_per_iter\":{}", r.ops);
            }
            if r.counted {
                let per_sec = 1e9 / r.median_ns_per_op();
                let _ = write!(out, ",\"instr_per_sec\":{}", json_num(per_sec));
            }
            out.push('}');
        }
        out.push(']');
        if !self.derived.is_empty() {
            out.push_str(",\"derived\":{");
            for (i, (name, value)) in self.derived.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\"{}\":{}",
                    name.replace('\\', "\\\\").replace('"', "\\\""),
                    json_num(*value)
                );
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Write the JSON artifact to `path`, creating parent directories.
    /// No-op in smoke mode (nothing was measured). Relative paths are
    /// anchored at the *workspace* root, not the current directory:
    /// cargo runs bench binaries with cwd = the package dir, and the
    /// `results/` artifacts (and the CI upload steps) live at top level.
    pub fn write_json(&self, path: &str) {
        if !self.measure {
            return;
        }
        let mut anchored = std::path::PathBuf::from(path);
        if anchored.is_relative() {
            if let Some(root) = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
            {
                anchored = root.join(anchored);
            }
        }
        let path = anchored.as_path();
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, self.to_json()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }

    /// Print the final aligned table (no-op in smoke mode).
    pub fn report(&self) {
        if !self.measure {
            return;
        }
        println!("\n== component benchmarks ==");
        println!(
            "{:<34} {:>12} {:>12} {:>12}",
            "bench", "best", "median", "mean"
        );
        for r in &self.rows {
            let ops = r.ops as f64;
            println!(
                "{:<34} {:>12} {:>12} {:>12}",
                r.name,
                fmt_ns(r.best.as_nanos() as f64 / ops),
                fmt_ns(r.median.as_nanos() as f64 / ops),
                fmt_ns(r.mean.as_nanos() as f64 / ops),
            );
        }
        for (name, value) in &self.derived {
            println!("{name:<34} {value:>12.2}");
        }
    }
}

/// Render a duration with a unit that keeps 3-4 significant digits.
pub fn fmt_duration(d: Duration) -> String {
    fmt_ns(d.as_nanos() as f64)
}

/// Render a (possibly sub-nanosecond) per-op time with 3-4 significant
/// digits.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 10.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// JSON-format a float: integral values print without a fraction,
/// everything else keeps three decimals (never `NaN`/`inf`, which are
/// invalid JSON — clamped to 0).
fn json_num(v: f64) -> String {
    if !v.is_finite() {
        "0".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}
