//! A minimal, dependency-free timing harness.
//!
//! The offline build has no criterion, so the component benches use
//! this instead: auto-calibrated iteration counts, a handful of batches
//! per bench, and a best/median/mean report. It intentionally mirrors
//! the small slice of the criterion API the benches need (`bench`,
//! `bench_batched`), so the bench bodies read the same.
//!
//! Modes follow the cargo convention: `cargo bench` passes `--bench` to
//! the target, which selects full measurement; any other invocation
//! (notably `cargo test`, which builds and runs bench targets) gets a
//! one-iteration smoke run so the suite stays fast.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Bench name, e.g. `wire/tcp_frame_encode`.
    pub name: String,
    /// Fastest observed batch, per iteration.
    pub best: Duration,
    /// Median batch, per iteration.
    pub median: Duration,
    /// Mean over all batches, per iteration.
    pub mean: Duration,
    /// Iterations per batch the calibration settled on.
    pub iters: u64,
}

/// Timing harness: collects rows and prints a report.
pub struct Harness {
    /// Target wall time per bench (all batches together).
    target: Duration,
    /// Number of batches to measure per bench.
    batches: usize,
    /// `true` under `cargo bench` (`--bench` in argv); `false` means
    /// smoke mode: one iteration per bench, no report table.
    measure: bool,
    rows: Vec<Row>,
}

impl Harness {
    /// Build a harness from argv; see the module docs for the modes.
    pub fn from_args() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Harness {
            target: Duration::from_millis(1500),
            batches: 5,
            measure,
            rows: Vec::new(),
        }
    }

    /// Whether full measurement is on (as opposed to smoke mode).
    pub fn measuring(&self) -> bool {
        self.measure
    }

    /// Time `f`, auto-calibrating the iteration count so one batch
    /// takes roughly `target / batches`.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if !self.measure {
            black_box(f());
            println!("smoke {name}: ok");
            return;
        }
        // Calibrate: time a single call, derive iterations per batch.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_batch = self.target / self.batches as u32;
        let iters = (per_batch.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;
        let mut samples = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        self.push_row(name, iters, samples);
    }

    /// Like [`Harness::bench`], but re-creates state with `setup` before
    /// every iteration and times only `f` (criterion's `iter_batched`).
    pub fn bench_batched<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) {
        if !self.measure {
            black_box(f(setup()));
            println!("smoke {name}: ok");
            return;
        }
        let input = setup();
        let t0 = Instant::now();
        black_box(f(input));
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_batch = self.target / self.batches as u32;
        let iters = (per_batch.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let inputs: Vec<S> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(f(input));
            }
            samples.push(start.elapsed() / iters as u32);
        }
        self.push_row(name, iters, samples);
    }

    fn push_row(&mut self, name: &str, iters: u64, mut samples: Vec<Duration>) {
        samples.sort();
        let best = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{name:<34} best {:>12} median {:>12} ({iters} iters/batch)",
            fmt_duration(best),
            fmt_duration(median),
        );
        self.rows.push(Row {
            name: name.to_string(),
            best,
            median,
            mean,
            iters,
        });
    }

    /// Serialize the measured rows as a `malnet.bench` v1 JSON document
    /// (the `BENCH_*.json` artifact format; see EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"schema\":\"malnet.bench\",\"version\":1,\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"best_ns\":{},\"median_ns\":{},\"mean_ns\":{},\"iters\":{}}}",
                r.name.replace('\\', "\\\\").replace('"', "\\\""),
                r.best.as_nanos(),
                r.median.as_nanos(),
                r.mean.as_nanos(),
                r.iters
            );
        }
        out.push_str("]}");
        out
    }

    /// Write the JSON artifact to `path`, creating parent directories.
    /// No-op in smoke mode (nothing was measured).
    pub fn write_json(&self, path: &str) {
        if !self.measure {
            return;
        }
        let path = std::path::Path::new(path);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, self.to_json()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }

    /// Print the final aligned table (no-op in smoke mode).
    pub fn report(&self) {
        if !self.measure {
            return;
        }
        println!("\n== component benchmarks ==");
        println!(
            "{:<34} {:>12} {:>12} {:>12}",
            "bench", "best", "median", "mean"
        );
        for r in &self.rows {
            println!(
                "{:<34} {:>12} {:>12} {:>12}",
                r.name,
                fmt_duration(r.best),
                fmt_duration(r.median),
                fmt_duration(r.mean),
            );
        }
    }
}

/// Render a duration with a unit that keeps 3-4 significant digits.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}
