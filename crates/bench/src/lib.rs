//! # malnet-bench — table/figure regeneration and benchmarks
//!
//! One binary per paper artefact (`table1` … `fig13`, `stats`,
//! `repro-all`) regenerates the corresponding rows/series from a full
//! pipeline run and prints them next to the paper's reported values.
//! Component benches (`benches/components.rs`, on the in-repo
//! [`timing`] harness) measure the performance of every pipeline
//! component; `par-sweep` measures the contained-activation stage at
//! several parallelism levels; ablation binaries sweep the design knobs
//! DESIGN.md calls out.
//!
//! All binaries accept `--samples N` (default 1447) and `--seed S`
//! (default 22); smaller corpora run in seconds and preserve the shapes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod render;
pub mod timing;

use malnet_botgen::world::{Calibration, World, WorldConfig};
use malnet_core::{Datasets, Pipeline, PipelineOpts};
use malnet_intel::VendorDb;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Corpus size.
    pub samples: usize,
    /// Seed.
    pub seed: u64,
    /// Use fast (reduced-duration) pipeline settings.
    pub fast: bool,
    /// Chaos fault seed override (`--fault-seed N`); the chaos binaries
    /// fall back to their own fixed default when absent.
    pub fault_seed: Option<u64>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            samples: 1447,
            seed: 22,
            fast: false,
            fault_seed: None,
        }
    }
}

/// Parse `--samples N --seed S --fast --fault-seed N` from argv.
pub fn parse_args() -> RunOpts {
    let mut opts = RunOpts::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--samples" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.samples = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.seed = v;
                    i += 1;
                }
            }
            "--fault-seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.fault_seed = Some(v);
                    i += 1;
                }
            }
            "--fast" => opts.fast = true,
            _ => {}
        }
        i += 1;
    }
    opts
}

/// Generate the world and run the full pipeline once.
pub fn run_study(opts: &RunOpts) -> (World, Datasets, VendorDb) {
    let world = World::generate(WorldConfig {
        seed: opts.seed,
        n_samples: opts.samples,
        cal: Calibration::default(),
    });
    let popts = if opts.fast {
        PipelineOpts {
            seed: opts.seed,
            ..PipelineOpts::fast()
        }
    } else {
        PipelineOpts {
            seed: opts.seed,
            // The paper's parameters, scaled to what the discrete-event
            // simulation needs: a 7-minute contained run reaches the
            // handshaker threshold; restricted sessions must outlast the
            // latest scheduled command (28 min + attack duration).
            contained_secs: 420,
            restricted_secs: 4200,
            probe_rounds: 84,
            probe_hosts_per_subnet: 120,
            ..Default::default()
        }
    };
    let (data, vendors) = Pipeline::new(popts).run(&world);
    (world, data, vendors)
}
