//! Renderers: one per paper artefact, printing measured values beside
//! the paper's reported ones.

use std::fmt::Write as _;

use malnet_botgen::world::World;
use malnet_core::analysis;
use malnet_core::datasets::Datasets;
use malnet_core::eval;
use malnet_intel::VendorDb;
use malnet_netsim::time::STUDY_WEEKS;
use malnet_protocols::Family;

/// Table 1: dataset sizes.
pub fn table1(data: &Datasets) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table 1: datasets ==");
    let _ = writeln!(out, "{:<12} {:>10} {:>10}", "dataset", "paper", "measured");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10}",
        "D-Samples",
        1447,
        data.samples.len()
    );
    let _ = writeln!(out, "{:<12} {:>10} {:>10}", "D-C2s", 1160, data.c2s.len());
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10}  ({} servers)",
        "D-PC2",
        448,
        data.probe_measurements(),
        data.probed.len()
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10}",
        "D-Exploits",
        197,
        data.exploit_sample_count()
    );
    let _ = writeln!(out, "{:<12} {:>10} {:>10}", "D-DDOS", 42, data.ddos.len());
    out
}

/// Table 2: top-10 C2-hosting ASes.
pub fn table2(world: &World, data: &Datasets) -> String {
    let (rows, share) = analysis::table2(data, &world.asdb, 10);
    let mut out = String::new();
    let _ = writeln!(out, "== Table 2: top ASes hosting C2 IPs ==");
    let _ = writeln!(
        out,
        "{:<26} {:>8} {:>4} {:>8} {:>9} {:>5}",
        "AS Name", "ASN", "CC", "Hosting", "AntiDDoS", "C2s"
    );
    for r in rows {
        let anti = match r.anti_ddos {
            Some(true) => "Yes",
            Some(false) => "No",
            None => "N/A",
        };
        let _ = writeln!(
            out,
            "{:<26} {:>8} {:>4} {:>8} {:>9} {:>5}",
            r.name,
            r.asn,
            r.country,
            if r.hosting { "Yes" } else { "No" },
            anti,
            r.c2_count
        );
    }
    let _ = writeln!(
        out,
        "top-10 share of all C2s: measured {:.1}% (paper 69.7%)",
        share * 100.0
    );
    out
}

/// Table 3: unreported C2 servers.
pub fn table3(data: &Datasets) -> String {
    let t = analysis::table3(data);
    let mut out = String::new();
    let _ = writeln!(out, "== Table 3: C2s unknown to threat-intel feeds ==");
    let _ = writeln!(
        out,
        "{:<10} {:>16} {:>16}",
        "type", "same-day (paper)", "late (paper)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>7.1}% (15.3%) {:>8.1}% (3.3%)",
        "All", t.all_day0, t.all_late
    );
    let _ = writeln!(
        out,
        "{:<10} {:>7.1}% (13.3%) {:>8.1}% (1.5%)",
        "IP-based", t.ip_day0, t.ip_late
    );
    let _ = writeln!(
        out,
        "{:<10} {:>7.1}% (57.6%) {:>8.1}% (35.0%)",
        "DNS-based", t.dns_day0, t.dns_late
    );
    out
}

/// Table 4: exploited vulnerabilities.
pub fn table4(data: &Datasets) -> String {
    let rows = analysis::table4(data);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table 4: exploited vulnerabilities (distinct samples) =="
    );
    let _ = writeln!(
        out,
        "{:<4} {:<18} {:<34} {:>7} {:>9}",
        "ID", "CVE/exploit", "device", "paper", "measured"
    );
    for (v, n) in rows {
        let info = v.info();
        let _ = writeln!(
            out,
            "{:<4} {:<18} {:<34} {:>7} {:>9}",
            info.group,
            info.cve.unwrap_or("(no CVE)"),
            &info.device[..info.device.len().min(34)],
            info.paper_samples,
            n
        );
    }
    out
}

/// Table 5: probing ports.
pub fn table5() -> String {
    format!(
        "== Table 5: probing ports ==\n{:?}\n(paper: identical — configuration constant)\n",
        malnet_botgen::world::PROBE_PORTS
    )
}

/// Table 7: per-vendor C2 detections.
pub fn table7(vendors: &VendorDb, data: &Datasets, late_day: u32) -> String {
    let rows = analysis::table7(vendors, data, late_day, 20);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table 7: top vendors by C2 IPs flagged (of {} IP-based C2s) ==",
        data.c2s.values().filter(|r| !r.dns).count()
    );
    let _ = writeln!(
        out,
        "(paper: counts over a 1000-C2 set, 0xSI_f33d 799 … G-Data 324)"
    );
    for (name, n) in rows {
        let _ = writeln!(out, "  {name:<28} {n:>6}");
    }
    let _ = writeln!(
        out,
        "vendors flagging ≥1 C2: {} (paper: 44 of 89)",
        vendors.active_vendor_count()
    );
    out
}

/// Figure 1: weekly heatmap of C2 activity per AS.
pub fn fig1(world: &World, data: &Datasets) -> String {
    let hm = analysis::fig1(data, &world.asdb);
    let mut out = hm.render(
        "== Figure 1: weekly C2 activity across top ASes (31 study weeks) ==",
        STUDY_WEEKS,
        10,
    );
    let _ = writeln!(
        out,
        "(paper: top-4 ASes consistently dark; activity peak at week 28)"
    );
    out
}

/// Figures 2 and 3: lifespan CDFs.
pub fn fig2_fig3(data: &Datasets) -> String {
    let ip = analysis::lifespan_cdf(data, false);
    let dns = analysis::lifespan_cdf(data, true);
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 2: observed lifespan of C2 IPs ==");
    let _ = writeln!(
        out,
        "P(lifespan <= 1 day) = {:.1}% (paper ~80%), mean = {:.1} d (paper ~4), max = {} (paper ~45)",
        ip.at(1) * 100.0,
        ip.mean(),
        ip.max()
    );
    let _ = writeln!(out, "{}", ip.render("C2 IP lifespan (days)"));
    let _ = writeln!(out, "== Figure 3: observed lifespan of C2 domains ==");
    let _ = writeln!(
        out,
        "P(<=1 day) = {:.1}%, mean = {:.1} d, n = {} (paper: qualitatively similar to IPs)",
        dns.at(1) * 100.0,
        dns.mean(),
        dns.len()
    );
    out
}

/// Figure 4: probing responsiveness raster + elusiveness stats.
pub fn fig4(data: &Datasets) -> String {
    let f = analysis::fig4(data, 6);
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 4: C2 responsiveness to probing (D-PC2) ==");
    for p in &data.probed {
        let raster: String = p
            .probes
            .iter()
            .map(|(_, e)| if *e { '#' } else { '.' })
            .collect();
        let _ = writeln!(out, "  {:>15}:{:<5} |{raster}|", p.ip.to_string(), p.port);
    }
    let _ = writeln!(
        out,
        "servers: {} (paper 7); silent-after-success: {:.1}% (paper 91%); \
         any full-response day: {} (paper: never); response rate {:.1}%",
        f.servers, f.silent_after_success, f.any_full_day, f.response_rate
    );
    out
}

/// Figures 5–7: sharing and vendor CDFs.
pub fn fig5_fig6_fig7(data: &Datasets) -> String {
    let ip = analysis::sharing_cdf(data, false);
    let dns = analysis::sharing_cdf(data, true);
    let vend = analysis::fig7(data);
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 5: distinct samples per C2 IP ==");
    let _ = writeln!(
        out,
        "P(=1 sample) = {:.1}% (paper ~40%); P(>10) = {:.1}% (paper ~20%); max = {} (paper ~18)",
        ip.at(1) * 100.0,
        (1.0 - ip.at(10)) * 100.0,
        ip.max()
    );
    let _ = writeln!(out, "== Figure 6: distinct samples per C2 domain ==");
    let _ = writeln!(
        out,
        "P(=1) = {:.1}%, max = {}, n = {} (paper: similar to IPs)",
        dns.at(1) * 100.0,
        dns.max(),
        dns.len()
    );
    let _ = writeln!(out, "== Figure 7: vendors flagging a known C2 ==");
    let _ = writeln!(
        out,
        "P(<=2 vendors) = {:.1}% (paper ~25%); median = {}; max = {}",
        vend.at(2) * 100.0,
        vend.quantile(0.5),
        vend.max()
    );
    out
}

/// Figure 8: per-vulnerability daily usage.
pub fn fig8(data: &Datasets) -> String {
    let series = analysis::fig8(data);
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 8: samples/day per exploit group ==");
    for (group, days) in &series {
        let total: u64 = days.values().sum();
        let peak = days.values().max().copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "  v{group:<2} days-active={:<4} total={total:<5} peak/day={peak}",
            days.len()
        );
    }
    let _ = writeln!(
        out,
        "(paper: four vulnerabilities—GPON pair, D-Link HNAP, MVPower—dominate consistently)"
    );
    out
}

/// Figure 9: loader filename frequencies.
pub fn fig9(data: &Datasets) -> String {
    let c = analysis::fig9(data);
    let mut out = c.render_bars("== Figure 9: loader filename frequencies ==");
    let _ = writeln!(
        out,
        "(paper: t8UsA2.sh 14, Tsunamix6 ~12, ddns.sh ~10, 8UsA.sh ~8, wget.sh ~6, zyxel.sh ~4, jaws.sh ~2)"
    );
    out
}

/// Figure 10: DDoS attacks by protocol.
pub fn fig10(data: &Datasets) -> String {
    let c = analysis::fig10(data);
    let total = c.total().max(1);
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 10: DDoS attacks by target protocol ==");
    for (proto, n) in c.sorted() {
        let _ = writeln!(
            out,
            "  {proto:<5} {n:>4}  ({:.0}%)",
            n as f64 * 100.0 / total as f64
        );
    }
    let _ = writeln!(out, "(paper: UDP 74% dominant; rest TCP/DNS/ICMP)");
    out
}

/// Figure 11: attack type × family.
pub fn fig11(data: &Datasets) -> String {
    let m = analysis::fig11(data);
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 11: attack types by family ==");
    for fam in [Family::Mirai, Family::Gafgyt, Family::Daddyl33t] {
        let mut parts: Vec<String> = Vec::new();
        let mut total = 0;
        for ((f, meth), n) in &m {
            if *f == fam {
                parts.push(format!("{meth}×{n}"));
                total += n;
            }
        }
        let _ = writeln!(
            out,
            "  {:<10} total={:<3} {}",
            fam.label(),
            total,
            parts.join(", ")
        );
    }
    let _ = writeln!(
        out,
        "(paper: Mirai most attacks; Daddyl33t second and most diverse; Gafgyt fewest)"
    );
    out
}

/// Figure 12: targets by AS type.
pub fn fig12(world: &World, data: &Datasets) -> String {
    let f = analysis::fig12(data, &world.asdb);
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 12: DDoS targets by AS type ==");
    let _ = writeln!(
        out,
        "target ASes: {} (paper 23) across {} countries (paper 11)",
        f.as_count, f.countries
    );
    for (kind, share) in &f.kind_share {
        let _ = writeln!(out, "  {kind:<10} {share:.0}%");
    }
    let _ = writeln!(
        out,
        "gaming-specialised ASes: {:.0}% (paper 18%); paper shares: ISP 45%, Hosting 36%, rest business",
        f.gaming_share
    );
    out
}

/// Figure 13: C2 spread across ASes.
pub fn fig13(data: &Datasets) -> String {
    let (cdf, n) = analysis::fig13(data);
    format!(
        "== Figure 13: C2 spread across ASes ==\nASes hosting C2s: {n} (paper 128); \
         max C2s in one AS: {}; P(AS hosts 1 C2) = {:.0}%\n",
        cdf.max(),
        cdf.at(1) * 100.0
    )
}

/// §3.1/§3.2/§5 headline statistics.
pub fn stats(data: &Datasets) -> String {
    let h = analysis::headline(data);
    let mut out = String::new();
    let _ = writeln!(out, "== Headline statistics ==");
    let _ = writeln!(
        out,
        "downloaders: {} distinct, {} co-located with C2s (paper: 47, 35)",
        h.downloaders, h.downloaders_also_c2
    );
    let _ = writeln!(
        out,
        "samples with all C2s dead on day 0: {:.1}% (paper 60%)",
        h.day0_dead_rate
    );
    let _ = writeln!(
        out,
        "mean observed C2 lifespan: {:.1} d (paper ~4); attack C2s: {:.1} d (paper ~10)",
        h.mean_lifespan, h.attack_c2_mean_lifespan
    );
    let _ = writeln!(
        out,
        "DDoS: {} commands from {} C2s to {} samples (paper 42/17/20)",
        h.ddos_commands, h.ddos_c2s, h.ddos_samples
    );
    let _ = writeln!(
        out,
        "targets hit by >1 attack type: {:.0}% (paper 25%); attack C2s unknown to feeds: {} (paper 2)",
        h.multi_type_targets, h.unknown_attack_c2s
    );
    out
}

/// Instrument evaluation vs ground truth.
pub fn evaluation(world: &World, data: &Datasets) -> String {
    format!(
        "== Instrument evaluation vs ground truth ==\n{}\n\
         (paper: ~90% activation rate; CnCHunter ~90% C2 precision)\n",
        eval::evaluate(world, data)
    )
}

/// Everything, in paper order.
pub fn all(world: &World, data: &Datasets, vendors: &VendorDb, late_day: u32) -> String {
    let mut out = String::new();
    for part in [
        table1(data),
        table2(world, data),
        table3(data),
        table4(data),
        table5(),
        table7(vendors, data, late_day),
        fig1(world, data),
        fig2_fig3(data),
        fig4(data),
        fig5_fig6_fig7(data),
        fig8(data),
        fig9(data),
        fig10(data),
        fig11(data),
        fig12(world, data),
        fig13(data),
        stats(data),
        evaluation(world, data),
    ] {
        out.push_str(&part);
        out.push('\n');
    }
    out
}
