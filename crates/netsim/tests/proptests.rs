//! Property tests for the simulator substrates: address-plan invariants,
//! calendar conversions, socket-stack robustness and network determinism.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use malnet_netsim::asdb::{standard_internet, Prefix};
use malnet_netsim::net::{Network, Service, ServiceCtx};
use malnet_netsim::stack::{HostStack, SockEvent};
use malnet_netsim::time::{
    days_of_study_week, study_week_of_day, SimDuration, SimTime, STUDY_WEEKS,
};
use malnet_wire::packet::Packet;
use malnet_wire::tcp::TcpFlags;

struct Echo;
impl Service for Echo {
    fn start(&mut self, ctx: &mut ServiceCtx<'_>) {
        ctx.tcp_listen(7);
        ctx.udp_bind(7);
    }
    fn on_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: SockEvent) {
        match ev {
            SockEvent::TcpData { sock, data } => ctx.tcp_send(sock, &data),
            SockEvent::UdpData { port, src, data } => ctx.udp_send(port, src.0, src.1, data),
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Prefix membership agrees with host enumeration.
    #[test]
    fn prefix_hosts_are_members(base in any::<u32>(), len in 8u8..=30, n in any::<u32>()) {
        let p = Prefix::new(Ipv4Addr::from(base), len);
        match p.host(n) {
            Some(ip) => {
                prop_assert!(p.contains(ip));
                prop_assert!(n < p.capacity());
            }
            None => prop_assert!(n >= p.capacity()),
        }
    }

    /// IP allocation never produces an address outside the AS's prefixes,
    /// and lookups invert allocation.
    #[test]
    fn alloc_lookup_inverse(k in 1usize..60) {
        let mut db = standard_internet(10, 5, 2, 2);
        let asns: Vec<_> = db.records().iter().map(|r| r.asn).collect();
        for i in 0..k {
            let asn = asns[i % asns.len()];
            if let Some(ip) = db.alloc_ip(asn) {
                prop_assert_eq!(db.asn_of(ip), Some(asn));
            }
        }
    }

    /// Study-week mapping and its inverse are consistent for all days.
    #[test]
    fn calendar_roundtrip(day in 0u32..500) {
        if let Some(w) = study_week_of_day(day) {
            prop_assert!((1..=STUDY_WEEKS).contains(&w));
            let range = days_of_study_week(w).unwrap();
            prop_assert!(range.contains(&day));
        }
    }

    /// Time arithmetic: day/seconds decomposition inverts construction.
    #[test]
    fn time_decomposition(day in 0u32..10_000, secs in 0u64..86_400) {
        let t = SimTime::from_day(day, secs);
        prop_assert_eq!(t.day(), day);
        prop_assert_eq!(t.secs_into_day(), secs);
    }

    /// A host stack never panics on arbitrary packets addressed to it.
    #[test]
    fn stack_total_on_arbitrary_packets(
        pkts in proptest::collection::vec(
            (any::<u32>(), any::<u16>(), any::<u16>(), 0u8..32,
             proptest::collection::vec(any::<u8>(), 0..64)),
            0..40,
        )
    ) {
        let me = Ipv4Addr::new(10, 0, 0, 1);
        let mut stack = HostStack::new(me);
        stack.tcp_listen(7);
        stack.udp_bind(9);
        for (src, sp, dp, flags, payload) in pkts {
            let p = Packet::tcp(Ipv4Addr::from(src), sp, me, dp, 1, 0, TcpFlags(flags), payload);
            let _ = stack.handle_packet(&p);
        }
    }

    /// The network is deterministic under arbitrary loss rates and
    /// workloads: two identically-seeded runs produce identical captures.
    #[test]
    fn network_deterministic_under_faults(
        loss in 0.0f64..0.9,
        seed in any::<u64>(),
        sends in 1usize..15,
    ) {
        let run = || {
            let mut net = Network::new(SimTime::EPOCH, seed);
            net.faults.loss = loss;
            let server = Ipv4Addr::new(10, 0, 0, 2);
            let client = Ipv4Addr::new(10, 0, 0, 1);
            net.add_service_host(server, Box::new(Echo));
            net.add_external_host(client);
            net.start_capture(client);
            for i in 0..sends {
                let s = net.ext_tcp_connect(client, server, 7);
                net.run_for(SimDuration::from_secs(1));
                net.ext_tcp_send(client, s, &[i as u8; 16]);
                net.ext_udp_send(client, 1000, server, 7, vec![i as u8]);
                net.run_for(SimDuration::from_secs(5));
            }
            net.stop_capture(client)
        };
        prop_assert_eq!(run(), run());
    }

    /// Two identically-seeded networks deliver identical `SockEvent`
    /// streams — even when one of them runs on a spawned thread. This is
    /// the substrate guarantee behind the parallel pipeline: a `Network`
    /// has no hidden global, thread-local, or address-dependent state.
    #[test]
    fn same_seed_same_sockevent_stream(
        seed in any::<u64>(),
        loss in 0.0f64..0.5,
        sends in 1usize..10,
    ) {
        let run = move || -> Vec<SockEvent> {
            let mut net = Network::new(SimTime::EPOCH, seed);
            net.faults.loss = loss;
            let server = Ipv4Addr::new(10, 0, 0, 2);
            let client = Ipv4Addr::new(10, 0, 0, 1);
            net.add_service_host(server, Box::new(Echo));
            net.add_external_host(client);
            let mut events = Vec::new();
            for i in 0..sends {
                let s = net.ext_tcp_connect(client, server, 7);
                net.run_for(SimDuration::from_secs(1));
                net.ext_tcp_send(client, s, &[i as u8; 8]);
                net.ext_udp_send(client, 2000, server, 7, vec![i as u8, 0xEE]);
                net.run_for(SimDuration::from_secs(4));
                events.extend(net.ext_events(client));
            }
            events
        };
        let on_main = run();
        let on_thread = std::thread::spawn(run).join().expect("worker run");
        prop_assert_eq!(on_main, on_thread);
    }
}
