//! # malnet-netsim — a discrete-event Internet simulator
//!
//! This crate is the "Internet" on which the MalNet reproduction runs. It
//! replaces the real network the paper measured with a deterministic
//! discrete-event simulation that produces the *same observable artefacts*:
//! real TCP handshakes, RSTs from closed ports, timeouts from dead hosts,
//! DNS transactions, and ICMP — all as [`malnet_wire::Packet`]s that can be
//! captured to pcap.
//!
//! Architecture (single-threaded, fully deterministic):
//!
//! * [`time`] — the virtual clock ([`time::SimTime`]) and the study
//!   calendar (day 0 = 2021-03-01; week mapping per the paper's Appendix E).
//! * [`asdb`] — an AS-level registry: ASN, organisation, country, AS type
//!   (hosting / ISP / business / gaming), anti-DDoS and crypto-payment
//!   attributes, and prefix-based IP→ASN resolution. Seeded with the ASes
//!   named in the paper (Table 2, Appendix A) plus synthetic filler.
//! * [`tcp`] — a per-connection TCP state machine that emits genuine
//!   SYN / SYN-ACK / ACK / PSH / FIN / RST segments with sequence tracking.
//! * [`stack`] — a per-host socket table (listeners, TCP connections, UDP
//!   binds) exposing a miniature sockets API and a stream of
//!   [`stack::SockEvent`]s.
//! * [`net`] — the event loop: hosts, links with latency/loss/corruption
//!   fault injection, timers, connect timeouts, and capture taps.
//! * [`dns`] — an authoritative DNS zone service used both by the "real"
//!   simulated resolver and by the sandbox's InetSim-style fake resolver.
//! * [`services`] — reusable application services (HTTP file server for
//!   malware downloaders, banner services for probe filtering, echo).
//!
//! Nothing here knows about malware; botnets are built on top by
//! `malnet-botgen` (world model) and `malnet-sandbox` (analysis side).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asdb;
pub mod dns;
pub mod net;
pub mod services;
pub mod stack;
pub mod tcp;
pub mod time;

pub use asdb::{AsDb, AsKind, AsRecord, Asn};
pub use net::{LinkFaults, Network, Service, ServiceCtx};
pub use stack::{HostStack, SockEvent, SockId};
pub use time::{SimDuration, SimTime};
