//! A per-connection TCP state machine.
//!
//! This is deliberately a *simulator's* TCP: it produces correct-looking
//! segment sequences (SYN / SYN-ACK / ACK, PSH-ACK data with sequence and
//! acknowledgement tracking, FIN teardown, RST aborts) for captures, and
//! the event queue delivers surviving packets in order, so there is no
//! retransmission or reassembly machinery. Loss normally shows up at the
//! connection-establishment level (SYN timeouts); under link-fault
//! injection a *data* segment can vanish mid-stream too, in which case
//! the receiver resynchronizes on the sender's sequence and the
//! application sees a hole — matching what the paper's instruments
//! actually observe on lossy paths: handshake completion, payload bytes,
//! and aborts.

use std::net::Ipv4Addr;

use malnet_wire::tcp::{TcpFlags, TcpHeader};
use malnet_wire::Packet;

/// Maximum payload bytes per emitted segment (conservative Ethernet MSS).
pub const MSS: usize = 1400;

/// TCP connection states (the subset a simulated endpoint traverses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// SYN sent, waiting for SYN-ACK (client).
    SynSent,
    /// SYN received, SYN-ACK sent, waiting for ACK (server).
    SynReceived,
    /// Three-way handshake complete.
    Established,
    /// We sent FIN, waiting for peer's ACK/FIN.
    FinWait,
    /// Peer sent FIN; we may still send, then FIN.
    CloseWait,
    /// We sent FIN after CloseWait, waiting for last ACK.
    LastAck,
    /// Fully closed (or aborted).
    Closed,
}

/// Events a connection reports to its owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// Handshake completed (both roles).
    Connected,
    /// In-order payload bytes arrived.
    Data(Vec<u8>),
    /// Peer closed its direction (FIN received).
    PeerFin,
    /// Connection was reset by the peer.
    Reset,
}

/// One endpoint of a TCP connection.
#[derive(Debug, Clone)]
pub struct TcpConn {
    /// Local address/port.
    pub local: (Ipv4Addr, u16),
    /// Remote address/port.
    pub remote: (Ipv4Addr, u16),
    /// Current state.
    pub state: TcpState,
    snd_nxt: u32,
    rcv_nxt: u32,
    /// Total payload bytes received.
    pub bytes_in: u64,
    /// Total payload bytes sent.
    pub bytes_out: u64,
}

impl TcpConn {
    /// Initiate an active open. Returns the connection and the SYN packet.
    pub fn connect(local: (Ipv4Addr, u16), remote: (Ipv4Addr, u16), iss: u32) -> (Self, Packet) {
        let conn = TcpConn {
            local,
            remote,
            state: TcpState::SynSent,
            snd_nxt: iss.wrapping_add(1),
            rcv_nxt: 0,
            bytes_in: 0,
            bytes_out: 0,
        };
        let syn = Packet::tcp(
            local.0,
            local.1,
            remote.0,
            remote.1,
            iss,
            0,
            TcpFlags::SYN,
            vec![],
        );
        (conn, syn)
    }

    /// Passive open: a listener accepted a SYN with sequence `peer_seq`.
    /// Returns the connection and the SYN-ACK packet.
    pub fn accept(
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        iss: u32,
        peer_seq: u32,
    ) -> (Self, Packet) {
        let conn = TcpConn {
            local,
            remote,
            state: TcpState::SynReceived,
            snd_nxt: iss.wrapping_add(1),
            rcv_nxt: peer_seq.wrapping_add(1),
            bytes_in: 0,
            bytes_out: 0,
        };
        let syn_ack = Packet::tcp(
            local.0,
            local.1,
            remote.0,
            remote.1,
            iss,
            conn.rcv_nxt,
            TcpFlags::SYN_ACK,
            vec![],
        );
        (conn, syn_ack)
    }

    fn mk(&self, flags: TcpFlags, seq: u32, payload: Vec<u8>) -> Packet {
        Packet::tcp(
            self.local.0,
            self.local.1,
            self.remote.0,
            self.remote.1,
            seq,
            self.rcv_nxt,
            flags,
            payload,
        )
    }

    /// Feed an incoming segment; returns packets to transmit and events
    /// for the owner.
    pub fn on_segment(&mut self, hdr: &TcpHeader, payload: &[u8]) -> (Vec<Packet>, Vec<TcpEvent>) {
        let mut out = Vec::new();
        let mut evs = Vec::new();
        if hdr.flags.rst() {
            if self.state != TcpState::Closed {
                self.state = TcpState::Closed;
                evs.push(TcpEvent::Reset);
            }
            return (out, evs);
        }
        match self.state {
            TcpState::SynSent => {
                if hdr.flags.syn() && hdr.flags.ack() {
                    self.rcv_nxt = hdr.seq.wrapping_add(1);
                    self.state = TcpState::Established;
                    out.push(self.mk(TcpFlags::ACK, self.snd_nxt, vec![]));
                    evs.push(TcpEvent::Connected);
                }
                // A bare SYN (simultaneous open) is not modelled.
            }
            TcpState::SynReceived => {
                if hdr.flags.ack() && !hdr.flags.syn() {
                    self.state = TcpState::Established;
                    evs.push(TcpEvent::Connected);
                    // Data may ride on the completing ACK.
                    if !payload.is_empty() {
                        let (mut o2, mut e2) = self.on_segment(
                            &TcpHeader {
                                flags: TcpFlags::PSH_ACK,
                                ..*hdr
                            },
                            payload,
                        );
                        out.append(&mut o2);
                        evs.append(&mut e2);
                    }
                }
            }
            TcpState::Established | TcpState::FinWait | TcpState::CloseWait => {
                if !payload.is_empty() && self.state != TcpState::CloseWait {
                    // The event queue delivers in order, so a sequence
                    // gap means link-fault injection dropped a segment.
                    // There is no retransmission machinery to recover
                    // the hole; resynchronize on the sender's sequence
                    // (the application sees a mid-stream drop, exactly
                    // what a lossy real-world path produces) instead of
                    // treating the gap as fatal. Segments entirely
                    // before `rcv_nxt` are duplicates: re-ACK, don't
                    // re-deliver.
                    let diff = hdr.seq.wrapping_sub(self.rcv_nxt) as i32;
                    if diff < 0 {
                        out.push(self.mk(TcpFlags::ACK, self.snd_nxt, vec![]));
                    } else {
                        self.rcv_nxt = hdr.seq.wrapping_add(payload.len() as u32);
                        self.bytes_in += payload.len() as u64;
                        out.push(self.mk(TcpFlags::ACK, self.snd_nxt, vec![]));
                        evs.push(TcpEvent::Data(payload.to_vec()));
                    }
                }
                if hdr.flags.fin() {
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                    out.push(self.mk(TcpFlags::ACK, self.snd_nxt, vec![]));
                    evs.push(TcpEvent::PeerFin);
                    self.state = match self.state {
                        TcpState::FinWait => TcpState::Closed,
                        _ => TcpState::CloseWait,
                    };
                }
            }
            TcpState::LastAck => {
                if hdr.flags.ack() {
                    self.state = TcpState::Closed;
                }
            }
            TcpState::Closed => {}
        }
        (out, evs)
    }

    /// Send payload bytes; emits one or more PSH-ACK segments. Returns an
    /// empty vector when the connection cannot carry data.
    pub fn send(&mut self, data: &[u8]) -> Vec<Packet> {
        if !matches!(self.state, TcpState::Established | TcpState::CloseWait) || data.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for chunk in data.chunks(MSS) {
            let seq = self.snd_nxt;
            self.snd_nxt = self.snd_nxt.wrapping_add(chunk.len() as u32);
            self.bytes_out += chunk.len() as u64;
            out.push(self.mk(TcpFlags::PSH_ACK, seq, chunk.to_vec()));
        }
        out
    }

    /// Begin an orderly close; emits FIN-ACK when appropriate.
    pub fn close(&mut self) -> Option<Packet> {
        match self.state {
            TcpState::Established => {
                let seq = self.snd_nxt;
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                self.state = TcpState::FinWait;
                Some(self.mk(TcpFlags::FIN_ACK, seq, vec![]))
            }
            TcpState::CloseWait => {
                let seq = self.snd_nxt;
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                self.state = TcpState::LastAck;
                Some(self.mk(TcpFlags::FIN_ACK, seq, vec![]))
            }
            TcpState::SynSent | TcpState::SynReceived => {
                self.state = TcpState::Closed;
                None
            }
            _ => None,
        }
    }

    /// Abort with RST.
    pub fn abort(&mut self) -> Option<Packet> {
        if self.state == TcpState::Closed {
            return None;
        }
        let seq = self.snd_nxt;
        self.state = TcpState::Closed;
        Some(self.mk(TcpFlags::RST, seq, vec![]))
    }

    /// True once the connection has fully terminated.
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malnet_wire::packet::Transport;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn hdr_of(p: &Packet) -> (TcpHeader, Vec<u8>) {
        match &p.transport {
            Transport::Tcp { header, payload } => (*header, payload.clone()),
            _ => panic!("not tcp"),
        }
    }

    /// Run a full handshake and return both established endpoints.
    fn establish() -> (TcpConn, TcpConn) {
        let (mut client, syn) = TcpConn::connect((C, 40000), (S, 23), 1000);
        let (sh, sp) = hdr_of(&syn);
        let (mut server, syn_ack) = TcpConn::accept((S, 23), (C, 40000), 9000, sh.seq);
        assert!(sp.is_empty());
        let (ah, ap) = hdr_of(&syn_ack);
        let (acks, evs) = client.on_segment(&ah, &ap);
        assert_eq!(evs, vec![TcpEvent::Connected]);
        assert_eq!(acks.len(), 1);
        let (h3, p3) = hdr_of(&acks[0]);
        let (out, evs) = server.on_segment(&h3, &p3);
        assert!(out.is_empty());
        assert_eq!(evs, vec![TcpEvent::Connected]);
        assert_eq!(client.state, TcpState::Established);
        assert_eq!(server.state, TcpState::Established);
        (client, server)
    }

    #[test]
    fn three_way_handshake() {
        establish();
    }

    #[test]
    fn data_transfer_updates_seq_and_acks() {
        let (mut client, mut server) = establish();
        let segs = client.send(b"GET / HTTP/1.0\r\n\r\n");
        assert_eq!(segs.len(), 1);
        let (h, p) = hdr_of(&segs[0]);
        assert!(h.flags.psh() && h.flags.ack());
        let (acks, evs) = server.on_segment(&h, &p);
        assert_eq!(
            evs,
            vec![TcpEvent::Data(b"GET / HTTP/1.0\r\n\r\n".to_vec())]
        );
        assert_eq!(acks.len(), 1);
        let (ah, _) = hdr_of(&acks[0]);
        assert_eq!(ah.ack, h.seq.wrapping_add(p.len() as u32));
        assert_eq!(server.bytes_in, 18);
        assert_eq!(client.bytes_out, 18);
    }

    #[test]
    fn large_send_is_segmented_at_mss() {
        let (mut client, mut server) = establish();
        let data = vec![7u8; MSS * 2 + 100];
        let segs = client.send(&data);
        assert_eq!(segs.len(), 3);
        let mut received = Vec::new();
        for s in &segs {
            let (h, p) = hdr_of(s);
            let (_, evs) = server.on_segment(&h, &p);
            for e in evs {
                if let TcpEvent::Data(d) = e {
                    received.extend_from_slice(&d);
                }
            }
        }
        assert_eq!(received, data);
    }

    #[test]
    fn orderly_close_both_directions() {
        let (mut client, mut server) = establish();
        let fin = client.close().unwrap();
        let (fh, fp) = hdr_of(&fin);
        assert!(fh.flags.fin());
        let (acks, evs) = server.on_segment(&fh, &fp);
        assert!(evs.contains(&TcpEvent::PeerFin));
        assert_eq!(server.state, TcpState::CloseWait);
        for a in &acks {
            let (h, p) = hdr_of(a);
            client.on_segment(&h, &p);
        }
        let fin2 = server.close().unwrap();
        let (f2h, f2p) = hdr_of(&fin2);
        let (acks2, evs2) = client.on_segment(&f2h, &f2p);
        assert!(evs2.contains(&TcpEvent::PeerFin));
        assert!(client.is_closed());
        for a in &acks2 {
            let (h, p) = hdr_of(a);
            server.on_segment(&h, &p);
        }
        assert!(server.is_closed());
    }

    #[test]
    fn rst_aborts_and_reports() {
        let (mut client, mut server) = establish();
        let rst = client.abort().unwrap();
        assert!(client.is_closed());
        let (h, p) = hdr_of(&rst);
        let (out, evs) = server.on_segment(&h, &p);
        assert!(out.is_empty());
        assert_eq!(evs, vec![TcpEvent::Reset]);
        assert!(server.is_closed());
    }

    /// A mid-stream loss (sequence gap) must not panic or stall: the
    /// receiver resynchronizes on the sender's sequence and the bytes
    /// after the hole still flow.
    #[test]
    fn lost_segment_resynchronizes_instead_of_panicking() {
        let (mut client, mut server) = establish();
        let segs = client.send(b"first");
        let lost = client.send(b"DROPPED");
        drop(lost); // never delivered: injected link loss
        let segs3 = client.send(b"third");
        let (h1, p1) = hdr_of(&segs[0]);
        let (_, evs1) = server.on_segment(&h1, &p1);
        assert_eq!(evs1, vec![TcpEvent::Data(b"first".to_vec())]);
        let (h3, p3) = hdr_of(&segs3[0]);
        let (acks, evs3) = server.on_segment(&h3, &p3);
        assert_eq!(evs3, vec![TcpEvent::Data(b"third".to_vec())]);
        assert_eq!(acks.len(), 1);
        // rcv_nxt tracks the sender again after the hole.
        assert_eq!(server.rcv_nxt, h3.seq.wrapping_add(p3.len() as u32));
        assert_eq!(server.bytes_in, 10); // "first" + "third"
    }

    /// A duplicated segment (e.g. replayed by fault injection) is
    /// re-ACKed but not re-delivered to the application.
    #[test]
    fn duplicate_segment_is_reacked_not_redelivered() {
        let (mut client, mut server) = establish();
        let segs = client.send(b"payload");
        let (h, p) = hdr_of(&segs[0]);
        let (_, evs) = server.on_segment(&h, &p);
        assert_eq!(evs, vec![TcpEvent::Data(b"payload".to_vec())]);
        let (acks, evs_dup) = server.on_segment(&h, &p);
        assert!(evs_dup.is_empty(), "duplicate delivered twice: {evs_dup:?}");
        assert_eq!(acks.len(), 1, "duplicate must still be ACKed");
        assert_eq!(server.bytes_in, 7);
    }

    #[test]
    fn send_before_established_is_dropped() {
        let (mut client, _syn) = TcpConn::connect((C, 1), (S, 2), 5);
        assert!(client.send(b"early").is_empty());
    }

    #[test]
    fn data_on_handshake_ack_is_delivered() {
        let (mut client, syn) = TcpConn::connect((C, 40000), (S, 80), 1000);
        let (sh, _) = hdr_of(&syn);
        let (mut server, syn_ack) = TcpConn::accept((S, 80), (C, 40000), 9000, sh.seq);
        let (ah, ap) = hdr_of(&syn_ack);
        client.on_segment(&ah, &ap);
        // Client sends data immediately; first the pure ACK then data.
        let segs = client.send(b"hello");
        // Server sees ACK+data in order; merge by feeding data segment
        // directly (the pure ACK raced ahead in the simulator).
        let (h, p) = hdr_of(&segs[0]);
        let (_, evs) = server.on_segment(
            &TcpHeader {
                flags: TcpFlags::PSH_ACK,
                ..h
            },
            &p,
        );
        assert!(evs.contains(&TcpEvent::Connected));
        assert!(evs.contains(&TcpEvent::Data(b"hello".to_vec())));
    }

    #[test]
    fn close_in_syn_sent_quietly_closes() {
        let (mut client, _) = TcpConn::connect((C, 1), (S, 2), 5);
        assert!(client.close().is_none());
        assert!(client.is_closed());
    }
}
