//! The Autonomous System registry and address plan of the simulated
//! Internet.
//!
//! The paper's hosting analysis (§3.1, Table 2, Figure 1, Figure 13,
//! Appendix A) and the DDoS target analysis (§5.3, Figure 12) both reduce
//! to an IP→AS mapping plus per-AS attributes. We model an Internet of a
//! few hundred ASes: the ~13 organisations the paper names, plus synthetic
//! filler ASes so that C2s spread across 128 ASes as in Appendix A.
//!
//! Every AS owns one or more IPv4 /16 or /24 prefixes; IPs are allocated
//! sequentially within a prefix so allocation is deterministic.

use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// An Autonomous System Number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// The business category of an AS, used in the paper's Q2 and Figure 12
/// analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AsKind {
    /// Dedicated/VPS hosting provider.
    Hosting,
    /// Internet Service Provider (eyeball network).
    Isp,
    /// An end business (e.g. Google, Amazon, Roblox).
    Business,
    /// Hosting specialised for the computer-gaming industry.
    GamingHosting,
}

impl fmt::Display for AsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AsKind::Hosting => "Hosting",
            AsKind::Isp => "ISP",
            AsKind::Business => "Business",
            AsKind::GamingHosting => "Gaming-Hosting",
        };
        f.write_str(s)
    }
}

/// A /prefix-aligned IPv4 block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    /// Network base address.
    pub base: Ipv4Addr,
    /// Prefix length in bits (8..=30).
    pub len: u8,
}

impl Prefix {
    /// Create a prefix; the base is masked to the prefix boundary.
    pub fn new(base: Ipv4Addr, len: u8) -> Self {
        assert!((8..=30).contains(&len), "prefix length out of range");
        let mask = u32::MAX << (32 - len);
        Prefix {
            base: Ipv4Addr::from(u32::from(base) & mask),
            len,
        }
    }

    /// Does `ip` fall inside this prefix?
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        let mask = u32::MAX << (32 - self.len);
        (u32::from(ip) & mask) == u32::from(self.base)
    }

    /// Number of host addresses available (excluding network/broadcast).
    pub fn capacity(&self) -> u32 {
        (1u32 << (32 - self.len)) - 2
    }

    /// The `n`-th host address (1-based internally: .0 is skipped).
    pub fn host(&self, n: u32) -> Option<Ipv4Addr> {
        if n >= self.capacity() {
            return None;
        }
        Some(Ipv4Addr::from(u32::from(self.base) + n + 1))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.len)
    }
}

/// A registered Autonomous System.
#[derive(Debug, Clone)]
pub struct AsRecord {
    /// The AS number.
    pub asn: Asn,
    /// Organisation name.
    pub name: String,
    /// ISO country code.
    pub country: &'static str,
    /// Business category.
    pub kind: AsKind,
    /// Does the organisation sell anti-DDoS protection? (`None` = unknown,
    /// like AS211252 in the paper which "does not provide any information
    /// on their website".)
    pub anti_ddos: Option<bool>,
    /// Does it accept cryptocurrency payments?
    pub crypto_payment: bool,
    /// Is it a top-100 AS by advertised IPv4 space?
    pub top100: bool,
    /// Owned prefixes.
    pub prefixes: Vec<Prefix>,
}

impl AsRecord {
    /// True for any flavour of hosting business.
    pub fn is_hosting(&self) -> bool {
        matches!(self.kind, AsKind::Hosting | AsKind::GamingHosting)
    }
}

/// The AS registry: lookup by ASN or by IP, plus deterministic IP
/// allocation.
#[derive(Debug, Clone, Default)]
pub struct AsDb {
    records: Vec<AsRecord>,
    // Lookup-only indexes into `records`; never iterated. lint: hash-ok
    by_asn: HashMap<u32, usize>,
    // Per-AS allocation cursor, entry-accessed by ASN only. lint: hash-ok
    alloc_cursor: HashMap<u32, u32>,
}

impl AsDb {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an AS. Panics on duplicate ASN (programming error in world
    /// construction, not untrusted input).
    pub fn register(&mut self, rec: AsRecord) {
        let asn = rec.asn.0;
        assert!(
            self.by_asn.insert(asn, self.records.len()).is_none(),
            "duplicate ASN {asn}"
        );
        self.records.push(rec);
    }

    /// Look up by ASN.
    pub fn get(&self, asn: Asn) -> Option<&AsRecord> {
        self.by_asn.get(&asn.0).map(|&i| &self.records[i])
    }

    /// Longest-prefix lookup of the AS owning `ip`.
    pub fn asn_of(&self, ip: Ipv4Addr) -> Option<Asn> {
        let mut best: Option<(u8, Asn)> = None;
        for rec in &self.records {
            for p in &rec.prefixes {
                if p.contains(ip) {
                    match best {
                        Some((len, _)) if len >= p.len => {}
                        _ => best = Some((p.len, rec.asn)),
                    }
                }
            }
        }
        best.map(|(_, asn)| asn)
    }

    /// Record for the AS owning `ip`.
    pub fn record_of(&self, ip: Ipv4Addr) -> Option<&AsRecord> {
        self.asn_of(ip).and_then(|a| self.get(a))
    }

    /// Deterministically allocate the next unused IP within the AS's
    /// prefixes. Returns `None` if the AS is unknown or full.
    pub fn alloc_ip(&mut self, asn: Asn) -> Option<Ipv4Addr> {
        let idx = *self.by_asn.get(&asn.0)?;
        let cursor = self.alloc_cursor.entry(asn.0).or_insert(0);
        let mut remaining = *cursor;
        for p in &self.records[idx].prefixes {
            let cap = p.capacity();
            if remaining < cap {
                let ip = p.host(remaining)?;
                *cursor += 1;
                return Some(ip);
            }
            remaining -= cap;
        }
        None
    }

    /// All registered records.
    pub fn records(&self) -> &[AsRecord] {
        &self.records
    }

    /// Number of registered ASes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no AS is registered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// One row of the paper's Table 2:
/// `(name, asn, country, hosting?, anti_ddos (None = N/A), crypto)`.
pub type Table2Row = (&'static str, u32, &'static str, bool, Option<bool>, bool);

/// The ten ASes of the paper's Table 2, in the paper's row order.
pub const TABLE2_ASES: [Table2Row; 10] = [
    ("ColoCrossing", 36352, "US", true, Some(true), false),
    ("Delis LLC", 211252, "US", true, None, false),
    ("DigitalOcean", 14061, "US", true, Some(true), false),
    ("FranTech Solutions", 53667, "LU", true, Some(true), true),
    ("HOSTGLOBAL", 202306, "RU", true, Some(true), true),
    ("Serverion LLC", 399471, "NL", true, Some(true), false),
    ("OVH SAS", 16276, "FR", true, Some(true), false),
    ("IP SERVER LLC", 44812, "RU", true, Some(true), true),
    ("Apeiron Global", 139884, "IN", true, Some(false), false),
    ("Serverius", 50673, "NL", true, Some(true), false),
];

/// Build the standard simulated-Internet AS plan:
///
/// * the 10 C2-hosting ASes of Table 2 (10.x.0.0/16 each),
/// * large businesses (Google AS15169, Amazon AS16509, Alibaba AS37963,
///   Roblox AS22697) which the paper notes appear both as C2 hosts
///   (Appendix A) and DDoS targets (§5.3),
/// * NFOservers (gaming, AS14586) targeted by the NFO attack,
/// * `extra_hosting` synthetic hosting ASes, `extra_isp` ISPs,
///   `extra_gaming` gaming hosts and `extra_business` businesses, spread
///   over countries in a fixed rotation.
pub fn standard_internet(
    extra_hosting: usize,
    extra_isp: usize,
    extra_gaming: usize,
    extra_business: usize,
) -> AsDb {
    let mut db = AsDb::new();
    for (i, (name, asn, country, _hosting, anti, crypto)) in TABLE2_ASES.iter().enumerate() {
        db.register(AsRecord {
            asn: Asn(*asn),
            name: (*name).to_string(),
            country,
            kind: AsKind::Hosting,
            anti_ddos: *anti,
            crypto_payment: *crypto,
            top100: false,
            prefixes: vec![Prefix::new(Ipv4Addr::new(10, i as u8 + 1, 0, 0), 16)],
        });
    }
    let big = [
        ("Google LLC", 15169u32, "US", AsKind::Business, true),
        ("Amazon.com Inc", 16509, "US", AsKind::Business, true),
        (
            "Hangzhou Alibaba Advertising",
            37963,
            "CN",
            AsKind::Business,
            true,
        ),
        ("Roblox", 22697, "US", AsKind::Business, false),
        ("NFOservers", 14586, "US", AsKind::GamingHosting, false),
    ];
    for (i, (name, asn, country, kind, top100)) in big.iter().enumerate() {
        db.register(AsRecord {
            asn: Asn(*asn),
            name: (*name).to_string(),
            country,
            kind: *kind,
            anti_ddos: Some(false),
            crypto_payment: false,
            top100: *top100,
            prefixes: vec![Prefix::new(Ipv4Addr::new(20, i as u8 + 1, 0, 0), 16)],
        });
    }
    let countries = [
        "US", "RU", "NL", "DE", "FR", "CN", "BR", "IN", "GB", "CZ", "UA", "KR",
    ];
    let mut third_octet = 0u8;
    let mut second = 30u8;
    let mut next_block = |db_len: usize| {
        let p = Prefix::new(Ipv4Addr::new(second, third_octet, 0, 0), 16);
        third_octet = third_octet.wrapping_add(1);
        if third_octet == 0 {
            second += 1;
        }
        let _ = db_len;
        p
    };
    let mut synth = |db: &mut AsDb, n: usize, kind: AsKind, base_asn: u32, tag: &str| {
        for i in 0..n {
            let asn = base_asn + i as u32;
            let p = next_block(db.len());
            db.register(AsRecord {
                asn: Asn(asn),
                name: format!("{tag}-{i:03}"),
                country: countries[i % countries.len()],
                kind,
                anti_ddos: Some(i % 3 != 0),
                crypto_payment: i % 5 == 0,
                top100: false,
                prefixes: vec![p],
            });
        }
    };
    synth(&mut db, extra_hosting, AsKind::Hosting, 60_000, "HostCo");
    synth(&mut db, extra_isp, AsKind::Isp, 61_000, "TelcoNet");
    synth(
        &mut db,
        extra_gaming,
        AsKind::GamingHosting,
        62_000,
        "GameHost",
    );
    synth(&mut db, extra_business, AsKind::Business, 63_000, "BizCorp");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_contains_and_capacity() {
        let p = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 24);
        assert_eq!(p.base, Ipv4Addr::new(10, 1, 2, 0));
        assert!(p.contains(Ipv4Addr::new(10, 1, 2, 200)));
        assert!(!p.contains(Ipv4Addr::new(10, 1, 3, 1)));
        assert_eq!(p.capacity(), 254);
        assert_eq!(p.host(0), Some(Ipv4Addr::new(10, 1, 2, 1)));
        assert_eq!(p.host(253), Some(Ipv4Addr::new(10, 1, 2, 254)));
        assert_eq!(p.host(254), None);
    }

    #[test]
    fn standard_internet_has_table2_ases() {
        let db = standard_internet(20, 10, 3, 3);
        for (name, asn, country, hosting, _, _) in TABLE2_ASES {
            let rec = db.get(Asn(asn)).expect("table2 AS registered");
            assert_eq!(rec.name, name);
            assert_eq!(rec.country, country);
            assert_eq!(rec.is_hosting(), hosting);
        }
        assert_eq!(db.len(), 10 + 5 + 20 + 10 + 3 + 3);
    }

    #[test]
    fn alloc_is_deterministic_and_unique() {
        let mut db = standard_internet(2, 2, 0, 0);
        let a = db.alloc_ip(Asn(36352)).unwrap();
        let b = db.alloc_ip(Asn(36352)).unwrap();
        assert_ne!(a, b);
        assert_eq!(db.asn_of(a), Some(Asn(36352)));
        let mut db2 = standard_internet(2, 2, 0, 0);
        assert_eq!(db2.alloc_ip(Asn(36352)).unwrap(), a);
    }

    #[test]
    fn asn_of_unknown_ip_is_none() {
        let db = standard_internet(1, 1, 1, 1);
        assert_eq!(db.asn_of(Ipv4Addr::new(250, 0, 0, 1)), None);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut db = AsDb::new();
        db.register(AsRecord {
            asn: Asn(1),
            name: "wide".into(),
            country: "US",
            kind: AsKind::Isp,
            anti_ddos: None,
            crypto_payment: false,
            top100: false,
            prefixes: vec![Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8)],
        });
        db.register(AsRecord {
            asn: Asn(2),
            name: "narrow".into(),
            country: "US",
            kind: AsKind::Hosting,
            anti_ddos: None,
            crypto_payment: false,
            top100: false,
            prefixes: vec![Prefix::new(Ipv4Addr::new(10, 5, 0, 0), 16)],
        });
        assert_eq!(db.asn_of(Ipv4Addr::new(10, 5, 1, 1)), Some(Asn(2)));
        assert_eq!(db.asn_of(Ipv4Addr::new(10, 6, 1, 1)), Some(Asn(1)));
    }

    #[test]
    fn alloc_exhaustion_returns_none() {
        let mut db = AsDb::new();
        db.register(AsRecord {
            asn: Asn(9),
            name: "tiny".into(),
            country: "US",
            kind: AsKind::Hosting,
            anti_ddos: None,
            crypto_payment: false,
            top100: false,
            prefixes: vec![Prefix::new(Ipv4Addr::new(192, 0, 2, 0), 30)],
        });
        assert!(db.alloc_ip(Asn(9)).is_some());
        assert!(db.alloc_ip(Asn(9)).is_some());
        assert!(db.alloc_ip(Asn(9)).is_none());
    }

    #[test]
    fn synthetic_ases_have_distinct_prefixes() {
        let db = standard_internet(300, 100, 10, 10);
        let mut seen = std::collections::HashSet::new();
        for r in db.records() {
            for p in &r.prefixes {
                assert!(seen.insert((u32::from(p.base), p.len)), "dup prefix {p}");
            }
        }
    }
}
