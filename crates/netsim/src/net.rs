//! The discrete-event network: hosts, links, timers, and captures.
//!
//! [`Network`] owns every simulated host. A host is either:
//!
//! * a **service host** — application logic implemented as a [`Service`]
//!   trait object, driven by socket events and timers (C2 servers, DNS,
//!   HTTP downloaders, victims, …), or
//! * an **external host** — driven from outside the event loop by the
//!   sandbox, which performs socket operations directly and drains a
//!   per-host event inbox (this is how the emulated malware's syscalls
//!   reach the network).
//!
//! Packets experience deterministic per-pair latency plus optional fault
//! injection ([`LinkFaults`]): loss and corruption probabilities drawn
//! from the network's seeded RNG. Packets to **down** hosts are silently
//! dropped, which is how dead C2 servers produce SYN timeouts. Capture
//! taps record traffic per host IP, producing the pcap evidence the
//! analysis pipeline consumes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::net::Ipv4Addr;

use malnet_prng::rngs::StdRng;
use malnet_prng::{Rng, SeedableRng};

use malnet_wire::Packet;

use crate::stack::{HostStack, SockEvent, SockId};
use crate::time::{SimDuration, SimTime};

/// SYN timeout before an unanswered active open fails.
pub const CONNECT_TIMEOUT: SimDuration = SimDuration::from_secs(3);

/// Link-level fault injection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a packet is dropped in flight.
    pub loss: f64,
    /// Probability one payload byte is flipped in flight (visible in
    /// captures as checksum failures).
    pub corrupt: f64,
    /// Base one-way latency.
    pub latency: SimDuration,
    /// Maximum additional deterministic per-pair jitter.
    pub jitter: SimDuration,
    /// Seed mixed into the per-pair jitter hash. `0` (the default)
    /// keeps the legacy pair-only jitter pattern; the chaos layer's
    /// `link_jitter` fault domain sets a per-link seed so delivery
    /// schedules are re-shuffled deterministically per (day, link).
    pub jitter_seed: u64,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            loss: 0.0,
            corrupt: 0.0,
            latency: SimDuration::from_millis(40),
            jitter: SimDuration::from_millis(30),
            jitter_seed: 0,
        }
    }
}

/// Context handed to services: the host's stack plus network side effects.
///
/// Socket operations performed through the context automatically transmit
/// the packets they generate.
pub struct ServiceCtx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The service host's socket stack.
    pub stack: &'a mut HostStack,
    out: &'a mut Vec<Packet>,
    timers: &'a mut Vec<(SimDuration, u64)>,
    rng: &'a mut StdRng,
    dns_faults: crate::dns::DnsFaults,
    dns_fault_counter: &'a malnet_telemetry::Counter,
}

impl ServiceCtx<'_> {
    /// Listen for TCP connections.
    pub fn tcp_listen(&mut self, port: u16) {
        self.stack.tcp_listen(port);
    }

    /// Bind a UDP port.
    pub fn udp_bind(&mut self, port: u16) {
        self.stack.udp_bind(port);
    }

    /// Active-open a TCP connection.
    pub fn tcp_connect(&mut self, dst: Ipv4Addr, dport: u16) -> SockId {
        let (sock, syn) = self.stack.tcp_connect(dst, dport);
        self.out.push(syn);
        sock
    }

    /// Send on an established connection.
    pub fn tcp_send(&mut self, sock: SockId, data: &[u8]) {
        let pkts = self.stack.tcp_send(sock, data);
        self.out.extend(pkts);
    }

    /// Orderly close.
    pub fn tcp_close(&mut self, sock: SockId) {
        let pkts = self.stack.tcp_close(sock);
        self.out.extend(pkts);
    }

    /// Abortive close.
    pub fn tcp_abort(&mut self, sock: SockId) {
        if let Some(p) = self.stack.tcp_abort(sock) {
            self.out.push(p);
        }
    }

    /// Send a UDP datagram.
    pub fn udp_send(&mut self, sport: u16, dst: Ipv4Addr, dport: u16, payload: Vec<u8>) {
        let p = self.stack.udp_send(sport, dst, dport, payload);
        self.out.push(p);
    }

    /// Send a raw pre-built packet (source must be this host).
    pub fn send_raw(&mut self, pkt: Packet) {
        debug_assert_eq!(pkt.src, self.stack.ip);
        self.out.push(pkt);
    }

    /// Arm a timer; `token` comes back via [`Service::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.timers.push((delay, token));
    }

    /// Deterministic RNG for application-level randomness.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The network's DNS fault-injection policy (chaos layer). Services
    /// that answer DNS consult this per query.
    pub fn dns_faults(&self) -> crate::dns::DnsFaults {
        self.dns_faults
    }

    /// Record one injected DNS fault (telemetry only).
    pub fn note_dns_fault(&mut self) {
        self.dns_fault_counter.incr();
    }
}

/// Application logic living on a service host.
pub trait Service {
    /// Called once when the host is installed (register listeners, arm
    /// timers).
    fn start(&mut self, ctx: &mut ServiceCtx<'_>) {
        let _ = ctx;
    }

    /// Called for each socket event.
    fn on_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: SockEvent);

    /// Called when a timer armed via [`ServiceCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
        let _ = (ctx, token);
    }
}

enum Driver {
    Service(Box<dyn Service + Send>),
    External(VecDeque<SockEvent>),
}

struct HostEntry {
    stack: HostStack,
    driver: Driver,
    up: bool,
    capture: Option<Vec<(u64, Packet)>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Deliver,
    Timer {
        host: Ipv4Addr,
        token: u64,
    },
    ConnectTimeout {
        host: Ipv4Addr,
        sock: SockId,
    },
    /// Scheduled host up/down transition (chaos layer: C2 downtime
    /// windows). Dispatch calls [`Network::set_host_up`].
    HostState {
        host: Ipv4Addr,
        up: bool,
    },
}

struct QueuedEvent {
    at: SimTime,
    seq: u64,
    kind: EventKind,
    packet: Option<Packet>,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Statistics counters for a network run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Packets submitted for transmission.
    pub sent: u64,
    /// Packets delivered to a host stack.
    pub delivered: u64,
    /// Packets dropped by fault injection.
    pub lost: u64,
    /// Packets corrupted by fault injection.
    pub corrupted: u64,
    /// Packets dropped because the destination was absent or down.
    pub blackholed: u64,
}

/// The simulated Internet.
pub struct Network {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    // Point queries by IP only; event order comes from the queue, never
    // from host-table iteration. lint: hash-ok
    hosts: HashMap<Ipv4Addr, HostEntry>,
    /// Fault model applied to every link.
    pub faults: LinkFaults,
    /// Fault model applied to DNS services on this network (chaos layer).
    pub dns_faults: crate::dns::DnsFaults,
    rng: StdRng,
    /// Run statistics.
    pub stats: NetStats,
    /// Optional egress filter: packets for which the filter returns false
    /// are dropped at transmission time. Used by the sandbox's containment
    /// (Snort-like IDS / restricted mode). Filters see (now, packet).
    filter: Option<EgressFilter>,
    /// Pre-resolved telemetry counters (inert by default).
    tel: NetTelemetry,
}

/// The network's pre-resolved telemetry counters. Disabled handles are
/// `None` inside, so the per-packet cost without telemetry is one branch.
#[derive(Debug, Clone, Default)]
struct NetTelemetry {
    delivered: malnet_telemetry::Counter,
    dropped: malnet_telemetry::Counter,
    dns_queries: malnet_telemetry::Counter,
    dns_faults: malnet_telemetry::Counter,
    delivered_bytes: malnet_telemetry::Histogram,
}

impl NetTelemetry {
    fn resolve(tel: &malnet_telemetry::Telemetry) -> Self {
        NetTelemetry {
            delivered: tel.counter("netsim.packets_delivered"),
            dropped: tel.counter("netsim.packets_dropped"),
            dns_queries: tel.counter("netsim.dns_queries"),
            dns_faults: tel.counter("netsim.dns_faults_injected"),
            delivered_bytes: tel.histogram("netsim.delivered_payload_bytes"),
        }
    }
}

/// An egress filter: `(now, packet) -> deliver?`. `Send` so a contained
/// network (filter installed) can run on a worker thread.
pub type EgressFilter = Box<dyn FnMut(SimTime, &Packet) -> bool + Send>;

// Compile-time guarantee: a network (with all its services) can move to
// a worker thread for parallel contained activation.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Network>();
};

impl Network {
    /// Create a network starting at `start` with the given RNG seed.
    pub fn new(start: SimTime, seed: u64) -> Self {
        Network {
            now: start,
            seq: 0,
            queue: BinaryHeap::new(),
            hosts: HashMap::new(), // lookup-only, see field. lint: hash-ok
            faults: LinkFaults::default(),
            dns_faults: crate::dns::DnsFaults::default(),
            rng: StdRng::seed_from_u64(seed ^ 0x6d61_6c6e_6574),
            stats: NetStats::default(),
            filter: None,
            tel: NetTelemetry::default(),
        }
    }

    /// Attach a telemetry handle: packet delivery, drops and DNS queries
    /// are counted into it from now on. Telemetry is observation-only —
    /// it never reads the simulated clock or the network RNG, so
    /// attaching it cannot perturb any simulation outcome (the
    /// differential determinism suite enforces this).
    pub fn set_telemetry(&mut self, tel: &malnet_telemetry::Telemetry) {
        self.tel = NetTelemetry::resolve(tel);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Install an egress filter (containment). Replaces any existing one.
    pub fn set_egress_filter(&mut self, f: EgressFilter) {
        self.filter = Some(f);
    }

    /// Remove the egress filter.
    pub fn clear_egress_filter(&mut self) {
        self.filter = None;
    }

    /// Install a service host. Panics on duplicate IP (world-construction
    /// bug).
    pub fn add_service_host(&mut self, ip: Ipv4Addr, mut service: Box<dyn Service + Send>) {
        assert!(!self.hosts.contains_key(&ip), "duplicate host {ip}");
        let mut stack = HostStack::new(ip);
        let mut out = Vec::new();
        let mut timers = Vec::new();
        {
            let mut ctx = ServiceCtx {
                now: self.now,
                stack: &mut stack,
                out: &mut out,
                timers: &mut timers,
                rng: &mut self.rng,
                dns_faults: self.dns_faults,
                dns_fault_counter: &self.tel.dns_faults,
            };
            service.start(&mut ctx);
        }
        self.hosts.insert(
            ip,
            HostEntry {
                stack,
                driver: Driver::Service(service),
                up: true,
                capture: None,
            },
        );
        self.flush(ip, out, timers);
    }

    /// Install an externally-driven host (the sandbox's malware VM or
    /// prober).
    pub fn add_external_host(&mut self, ip: Ipv4Addr) {
        assert!(!self.hosts.contains_key(&ip), "duplicate host {ip}");
        self.hosts.insert(
            ip,
            HostEntry {
                stack: HostStack::new(ip),
                driver: Driver::External(VecDeque::new()),
                up: true,
                capture: None,
            },
        );
    }

    /// Remove a host entirely (its in-flight packets will blackhole).
    pub fn remove_host(&mut self, ip: Ipv4Addr) {
        self.hosts.remove(&ip);
    }

    /// Does a host exist at this address?
    pub fn has_host(&self, ip: Ipv4Addr) -> bool {
        self.hosts.contains_key(&ip)
    }

    /// Mark a host up or down. Taking a host down aborts its connections
    /// and puts RST segments on the wire for every established peer — the
    /// kernel's socket cleanup outruns the link going dark when a daemon
    /// dies, so peers learn of the death instead of holding half-open
    /// connections forever. (Before this, a C2 dying mid-session left the
    /// eavesdropping side with dangling TCP state that never resolved.)
    pub fn set_host_up(&mut self, ip: Ipv4Addr, up: bool) {
        let mut rsts = Vec::new();
        if let Some(h) = self.hosts.get_mut(&ip) {
            if h.up && !up {
                rsts = h.stack.abort_all();
            }
            h.up = up;
        }
        for pkt in rsts {
            self.send_packet(pkt);
        }
    }

    /// Schedule a host up/down transition at an absolute virtual time
    /// (chaos layer: C2 downtime windows). Times in the past fire on the
    /// next event-loop step.
    pub fn schedule_host_state(&mut self, ip: Ipv4Addr, at: SimTime, up: bool) {
        self.push_event(at, EventKind::HostState { host: ip, up }, None);
    }

    /// Is the host present and up?
    pub fn host_up(&self, ip: Ipv4Addr) -> bool {
        self.hosts.get(&ip).map(|h| h.up).unwrap_or(false)
    }

    /// Enable packet capture on a host; all packets sent or received by
    /// `ip` from now on are recorded.
    pub fn start_capture(&mut self, ip: Ipv4Addr) {
        if let Some(h) = self.hosts.get_mut(&ip) {
            h.capture = Some(Vec::new());
        }
    }

    /// Stop capturing and return the recorded (timestamp µs, packet) list.
    pub fn stop_capture(&mut self, ip: Ipv4Addr) -> Vec<(u64, Packet)> {
        self.hosts
            .get_mut(&ip)
            .and_then(|h| h.capture.take())
            .unwrap_or_default()
    }

    /// Peek at a running capture without stopping it.
    pub fn capture_len(&self, ip: Ipv4Addr) -> usize {
        self.hosts
            .get(&ip)
            .and_then(|h| h.capture.as_ref())
            .map(|c| c.len())
            .unwrap_or(0)
    }

    fn record(&mut self, ip: Ipv4Addr, ts: SimTime, pkt: &Packet) {
        if let Some(h) = self.hosts.get_mut(&ip) {
            if let Some(cap) = h.capture.as_mut() {
                cap.push((ts.as_micros(), pkt.clone()));
            }
        }
    }

    /// Deterministic per-pair latency: base + hash-derived jitter. The
    /// hash mixes `LinkFaults::jitter_seed` (splitmix64-style) so a
    /// seeded fault plan reshuffles the per-pair delivery pattern
    /// without any extra RNG draws; seed 0 reproduces the legacy bytes.
    fn latency(&self, src: Ipv4Addr, dst: Ipv4Addr) -> SimDuration {
        let h = u64::from(u32::from(src))
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(u32::from(dst)).wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
            ^ self.faults.jitter_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let jitter_us = if self.faults.jitter.as_micros() == 0 {
            0
        } else {
            h % self.faults.jitter.as_micros()
        };
        SimDuration::from_micros(self.faults.latency.as_micros() + jitter_us)
    }

    /// Submit a packet for transmission at the current time.
    pub fn send_packet(&mut self, pkt: Packet) {
        self.stats.sent += 1;
        if let Some(filter) = self.filter.as_mut() {
            if !filter(self.now, &pkt) {
                // Contained by the egress filter; still visible on the
                // sender's tap (the IDS sits at the network perimeter).
                let now = self.now;
                let src = pkt.src;
                self.record(src, now, &pkt);
                return;
            }
        }
        let now = self.now;
        self.record(pkt.src, now, &pkt);
        // Fault injection.
        if self.faults.loss > 0.0 && self.rng.gen_bool(self.faults.loss) {
            self.stats.lost += 1;
            self.tel.dropped.incr();
            return;
        }
        let mut pkt = pkt;
        if self.faults.corrupt > 0.0 && self.rng.gen_bool(self.faults.corrupt) {
            self.stats.corrupted += 1;
            // Flip one bit of the payload if there is one; corrupted
            // packets fail transport checksums and are dropped at the
            // receiver, exactly like real damaged frames.
            if let malnet_wire::packet::Transport::Udp { payload, .. }
            | malnet_wire::packet::Transport::Tcp { payload, .. } = &mut pkt.transport
            {
                if !payload.is_empty() {
                    payload[0] ^= 0x01;
                    // Note: we re-encode, so checksums are recomputed and
                    // the corruption is semantic (payload altered), not a
                    // checksum failure. This models payload damage that
                    // slips past checksums and exercises parser robustness.
                }
            }
        }
        let delay = self.latency(pkt.src, pkt.dst);
        let at = self.now + delay;
        self.push_event(at, EventKind::Deliver, Some(pkt));
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind, packet: Option<Packet>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            at,
            seq,
            kind,
            packet,
        }));
    }

    fn flush(&mut self, ip: Ipv4Addr, out: Vec<Packet>, timers: Vec<(SimDuration, u64)>) {
        for pkt in out {
            self.send_packet(pkt);
        }
        for (delay, token) in timers {
            let at = self.now + delay;
            self.push_event(at, EventKind::Timer { host: ip, token }, None);
        }
    }

    /// Perform socket operations on an external host. Packets generated by
    /// the operations are transmitted; connect timeouts are armed
    /// automatically.
    pub fn with_external<R>(
        &mut self,
        ip: Ipv4Addr,
        f: impl FnOnce(&mut HostStack) -> (R, Vec<Packet>),
    ) -> R {
        let host = self.hosts.get_mut(&ip).expect("external host exists");
        debug_assert!(matches!(host.driver, Driver::External(_)));
        let (r, pkts) = f(&mut host.stack);
        for pkt in pkts {
            self.send_packet(pkt);
        }
        r
    }

    /// Active-open from an external host, arming the SYN timeout.
    pub fn ext_tcp_connect(&mut self, ip: Ipv4Addr, dst: Ipv4Addr, dport: u16) -> SockId {
        let sock = self.with_external(ip, |s| {
            let (sock, syn) = s.tcp_connect(dst, dport);
            (sock, vec![syn])
        });
        let at = self.now + CONNECT_TIMEOUT;
        self.push_event(at, EventKind::ConnectTimeout { host: ip, sock }, None);
        sock
    }

    /// Active-open from an external host with a fixed source port.
    pub fn ext_tcp_connect_from(
        &mut self,
        ip: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
    ) -> SockId {
        let sock = self.with_external(ip, |s| {
            let (sock, syn) = s.tcp_connect_from(sport, dst, dport);
            (sock, vec![syn])
        });
        let at = self.now + CONNECT_TIMEOUT;
        self.push_event(at, EventKind::ConnectTimeout { host: ip, sock }, None);
        sock
    }

    /// Send on an external host's connection.
    pub fn ext_tcp_send(&mut self, ip: Ipv4Addr, sock: SockId, data: &[u8]) {
        self.with_external(ip, |s| ((), s.tcp_send(sock, data)));
    }

    /// Close an external host's connection.
    pub fn ext_tcp_close(&mut self, ip: Ipv4Addr, sock: SockId) {
        self.with_external(ip, |s| ((), s.tcp_close(sock)));
    }

    /// Abort an external host's connection.
    pub fn ext_tcp_abort(&mut self, ip: Ipv4Addr, sock: SockId) {
        self.with_external(ip, |s| ((), s.tcp_abort(sock).into_iter().collect()));
    }

    /// Listen on an external host.
    pub fn ext_tcp_listen(&mut self, ip: Ipv4Addr, port: u16) {
        self.with_external(ip, |s| {
            s.tcp_listen(port);
            ((), vec![])
        });
    }

    /// Bind UDP on an external host.
    pub fn ext_udp_bind(&mut self, ip: Ipv4Addr, port: u16) {
        self.with_external(ip, |s| {
            s.udp_bind(port);
            ((), vec![])
        });
    }

    /// Send UDP from an external host.
    pub fn ext_udp_send(
        &mut self,
        ip: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        data: Vec<u8>,
    ) {
        self.with_external(ip, |s| {
            let p = s.udp_send(sport, dst, dport, data);
            ((), vec![p])
        });
    }

    /// Send a raw packet from an external host (attack traffic with crafted
    /// source ports, ICMP floods, …).
    pub fn ext_send_raw(&mut self, ip: Ipv4Addr, pkt: Packet) {
        debug_assert_eq!(pkt.src, ip);
        self.send_packet(pkt);
    }

    /// Drain the event inbox of an external host.
    pub fn ext_events(&mut self, ip: Ipv4Addr) -> Vec<SockEvent> {
        match self.hosts.get_mut(&ip).map(|h| &mut h.driver) {
            Some(Driver::External(q)) => q.drain(..).collect(),
            _ => Vec::new(),
        }
    }

    /// Inspect an external host's stack (read-only helpers like `state`).
    pub fn ext_stack(&self, ip: Ipv4Addr) -> Option<&HostStack> {
        self.hosts.get(&ip).map(|h| &h.stack)
    }

    /// Process all events up to and including `until`. Returns the number
    /// of events processed.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let mut n = 0;
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > until {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.now = ev.at.max(self.now);
            self.dispatch(ev);
            n += 1;
        }
        self.now = self.now.max(until);
        n
    }

    /// Advance by `dur`, processing everything due.
    pub fn run_for(&mut self, dur: SimDuration) -> u64 {
        let until = self.now + dur;
        self.run_until(until)
    }

    /// Run until the queue is empty or `max_events` processed; returns
    /// events processed. Useful for "settle" phases in tests.
    pub fn run_idle(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events {
            let Some(Reverse(ev)) = self.queue.pop() else {
                break;
            };
            self.now = ev.at.max(self.now);
            self.dispatch(ev);
            n += 1;
        }
        n
    }

    fn dispatch(&mut self, ev: QueuedEvent) {
        match ev.kind {
            EventKind::Deliver => {
                let pkt = ev.packet.expect("deliver carries packet");
                let dst = pkt.dst;
                let up = self.host_up(dst);
                if !up {
                    self.stats.blackholed += 1;
                    self.tel.dropped.incr();
                    return;
                }
                self.stats.delivered += 1;
                self.tel.delivered.incr();
                self.tel
                    .delivered_bytes
                    .record(pkt.transport.payload().len() as u64);
                if matches!(&pkt.transport,
                    malnet_wire::packet::Transport::Udp { header, .. } if header.dst_port == 53)
                {
                    self.tel.dns_queries.incr();
                }
                let now = self.now;
                self.record(dst, now, &pkt);
                let host = self.hosts.get_mut(&dst).expect("host_up checked");
                let out = host.stack.handle_packet(&pkt);
                let mut pkts = out.replies;
                let mut timers = Vec::new();
                match &mut host.driver {
                    Driver::External(q) => q.extend(out.events),
                    Driver::Service(_) => {
                        // Re-borrow dance: take the service out to appease
                        // the borrow checker, run events, put it back.
                        let mut driver =
                            std::mem::replace(&mut host.driver, Driver::External(VecDeque::new()));
                        if let Driver::Service(svc) = &mut driver {
                            let mut ctx_out = Vec::new();
                            {
                                let mut ctx = ServiceCtx {
                                    now: self.now,
                                    stack: &mut host.stack,
                                    out: &mut ctx_out,
                                    timers: &mut timers,
                                    rng: &mut self.rng,
                                    dns_faults: self.dns_faults,
                                    dns_fault_counter: &self.tel.dns_faults,
                                };
                                for e in out.events {
                                    svc.on_event(&mut ctx, e);
                                }
                            }
                            pkts.extend(ctx_out);
                        }
                        let host = self.hosts.get_mut(&dst).expect("still here");
                        host.driver = driver;
                    }
                }
                self.flush(dst, pkts, timers);
            }
            EventKind::Timer { host: ip, token } => {
                let Some(host) = self.hosts.get_mut(&ip) else {
                    return;
                };
                if !host.up {
                    return;
                }
                let mut pkts = Vec::new();
                let mut timers = Vec::new();
                let mut driver =
                    std::mem::replace(&mut host.driver, Driver::External(VecDeque::new()));
                if let Driver::Service(svc) = &mut driver {
                    let mut ctx_out = Vec::new();
                    {
                        let mut ctx = ServiceCtx {
                            now: self.now,
                            stack: &mut host.stack,
                            out: &mut ctx_out,
                            timers: &mut timers,
                            rng: &mut self.rng,
                            dns_faults: self.dns_faults,
                            dns_fault_counter: &self.tel.dns_faults,
                        };
                        svc.on_timer(&mut ctx, token);
                    }
                    pkts.extend(ctx_out);
                }
                let host = self.hosts.get_mut(&ip).expect("still here");
                host.driver = driver;
                self.flush(ip, pkts, timers);
            }
            EventKind::ConnectTimeout { host: ip, sock } => {
                let Some(host) = self.hosts.get_mut(&ip) else {
                    return;
                };
                if let Some(ev) = host.stack.connect_timeout_fired(sock) {
                    match &mut host.driver {
                        Driver::External(q) => q.push_back(ev),
                        Driver::Service(_) => {
                            let mut driver = std::mem::replace(
                                &mut host.driver,
                                Driver::External(VecDeque::new()),
                            );
                            let mut pkts = Vec::new();
                            let mut timers = Vec::new();
                            if let Driver::Service(svc) = &mut driver {
                                let mut ctx = ServiceCtx {
                                    now: self.now,
                                    stack: &mut host.stack,
                                    out: &mut pkts,
                                    timers: &mut timers,
                                    rng: &mut self.rng,
                                    dns_faults: self.dns_faults,
                                    dns_fault_counter: &self.tel.dns_faults,
                                };
                                svc.on_event(&mut ctx, ev);
                            }
                            let host = self.hosts.get_mut(&ip).expect("still here");
                            host.driver = driver;
                            self.flush(ip, pkts, timers);
                        }
                    }
                }
            }
            EventKind::HostState { host, up } => {
                self.set_host_up(host, up);
            }
        }
    }

    /// Arm a timer on a service host from outside (world orchestration).
    pub fn arm_timer(&mut self, ip: Ipv4Addr, delay: SimDuration, token: u64) {
        let at = self.now + delay;
        self.push_event(at, EventKind::Timer { host: ip, token }, None);
    }

    /// Access the deterministic RNG (world construction convenience).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::ConnectError;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// A service that listens on a port and echoes data back uppercased.
    struct Upper;
    impl Service for Upper {
        fn start(&mut self, ctx: &mut ServiceCtx<'_>) {
            ctx.tcp_listen(7);
        }
        fn on_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: SockEvent) {
            if let SockEvent::TcpData { sock, data } = ev {
                let up: Vec<u8> = data.iter().map(|b| b.to_ascii_uppercase()).collect();
                ctx.tcp_send(sock, &up);
            }
        }
    }

    fn net() -> Network {
        Network::new(SimTime::EPOCH, 42)
    }

    #[test]
    fn external_connects_to_service_and_exchanges_data() {
        let mut net = net();
        net.add_service_host(B, Box::new(Upper));
        net.add_external_host(A);
        let sock = net.ext_tcp_connect(A, B, 7);
        net.run_for(SimDuration::from_secs(1));
        let evs = net.ext_events(A);
        assert!(evs.contains(&SockEvent::Connected(sock)), "{evs:?}");
        net.ext_tcp_send(A, sock, b"hello");
        net.run_for(SimDuration::from_secs(1));
        let evs = net.ext_events(A);
        assert!(
            evs.iter()
                .any(|e| matches!(e, SockEvent::TcpData { data, .. } if data == b"HELLO")),
            "{evs:?}"
        );
    }

    #[test]
    fn connect_to_dead_host_times_out() {
        let mut net = net();
        net.add_external_host(A);
        net.add_service_host(B, Box::new(Upper));
        net.set_host_up(B, false);
        let sock = net.ext_tcp_connect(A, B, 7);
        net.run_for(SimDuration::from_secs(10));
        let evs = net.ext_events(A);
        assert!(
            evs.contains(&SockEvent::ConnectFailed {
                sock,
                reason: ConnectError::TimedOut
            }),
            "{evs:?}"
        );
        assert!(net.stats.blackholed >= 1);
    }

    #[test]
    fn connect_to_closed_port_is_refused() {
        let mut net = net();
        net.add_external_host(A);
        net.add_service_host(B, Box::new(Upper));
        let sock = net.ext_tcp_connect(A, B, 9);
        net.run_for(SimDuration::from_secs(10));
        let evs = net.ext_events(A);
        assert!(
            evs.contains(&SockEvent::ConnectFailed {
                sock,
                reason: ConnectError::Refused
            }),
            "{evs:?}"
        );
    }

    #[test]
    fn capture_sees_both_directions() {
        let mut net = net();
        net.add_service_host(B, Box::new(Upper));
        net.add_external_host(A);
        net.start_capture(A);
        let sock = net.ext_tcp_connect(A, B, 7);
        net.run_for(SimDuration::from_secs(1));
        net.ext_tcp_send(A, sock, b"x");
        net.run_for(SimDuration::from_secs(1));
        let cap = net.stop_capture(A);
        // SYN, SYN-ACK, ACK, data, ack, reply data, ack ≥ 6 packets.
        assert!(cap.len() >= 6, "capture too small: {}", cap.len());
        let to_b = cap.iter().filter(|(_, p)| p.dst == B).count();
        let from_b = cap.iter().filter(|(_, p)| p.src == B).count();
        assert!(to_b >= 3 && from_b >= 2);
        // Timestamps are monotone.
        assert!(cap.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn loss_faults_cause_syn_timeouts() {
        let mut net = net();
        net.faults.loss = 1.0;
        net.add_service_host(B, Box::new(Upper));
        net.add_external_host(A);
        let sock = net.ext_tcp_connect(A, B, 7);
        net.run_for(SimDuration::from_secs(10));
        let evs = net.ext_events(A);
        assert!(evs.contains(&SockEvent::ConnectFailed {
            sock,
            reason: ConnectError::TimedOut
        }));
        assert!(net.stats.lost >= 1);
    }

    #[test]
    fn egress_filter_contains_traffic() {
        let mut net = net();
        net.add_service_host(B, Box::new(Upper));
        net.add_external_host(A);
        // Block everything except to port 7 — then block everything.
        net.set_egress_filter(Box::new(|_, pkt| pkt.transport.dst_port() != Some(9999)));
        net.ext_udp_send(A, 5, B, 9999, vec![1]);
        net.run_for(SimDuration::from_secs(1));
        assert_eq!(net.stats.delivered, 0);
        net.ext_udp_send(A, 5, B, 53, vec![1]);
        net.run_for(SimDuration::from_secs(1));
        // The datagram reaches B (1 delivery) and B's port-unreachable
        // reply reaches A (a 2nd delivery).
        assert!(net.stats.delivered >= 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerLog(Vec<u64>);
        impl Service for TimerLog {
            fn start(&mut self, ctx: &mut ServiceCtx<'_>) {
                ctx.set_timer(SimDuration::from_secs(2), 2);
                ctx.set_timer(SimDuration::from_secs(1), 1);
                ctx.set_timer(SimDuration::from_secs(3), 3);
            }
            fn on_event(&mut self, _ctx: &mut ServiceCtx<'_>, _ev: SockEvent) {}
            fn on_timer(&mut self, ctx: &mut ServiceCtx<'_>, token: u64) {
                self.0.push(token);
                if token == 1 {
                    // Fire a UDP packet so the outside can observe us.
                    ctx.udp_send(1, Ipv4Addr::new(10, 0, 0, 99), 1, vec![token as u8]);
                }
            }
        }
        let mut net = net();
        net.add_service_host(B, Box::new(TimerLog(Vec::new())));
        net.run_for(SimDuration::from_secs(5));
        assert!(net.stats.sent >= 1);
    }

    #[test]
    fn down_host_resets_connections() {
        let mut net = net();
        net.add_service_host(B, Box::new(Upper));
        net.add_external_host(A);
        let _sock = net.ext_tcp_connect(A, B, 7);
        net.run_for(SimDuration::from_secs(1));
        net.set_host_up(B, false);
        assert!(!net.host_up(B));
        net.set_host_up(B, true);
        // Stack was reset: no connections remain server-side.
        assert_eq!(net.hosts.get(&B).unwrap().stack.conn_count(), 0);
    }

    /// Regression (ISSUE 4 satellite): a host dying **mid-session** must
    /// not leave the peer with dangling TCP state. Before the fix, the
    /// downed host's own stack was cleared but the established peer
    /// connection hung around forever — no event, no garbage collection.
    #[test]
    fn mid_session_host_death_resets_the_peer() {
        let mut net = net();
        net.add_service_host(B, Box::new(Upper));
        net.add_external_host(A);
        let sock = net.ext_tcp_connect(A, B, 7);
        net.run_for(SimDuration::from_secs(1));
        assert!(net.ext_events(A).contains(&SockEvent::Connected(sock)));
        assert_eq!(net.ext_stack(A).unwrap().conn_count(), 1);
        // The server dies while the session is established.
        net.set_host_up(B, false);
        net.run_for(SimDuration::from_secs(1));
        let evs = net.ext_events(A);
        assert!(
            evs.contains(&SockEvent::Reset { sock }),
            "peer saw no reset: {evs:?}"
        );
        assert_eq!(
            net.ext_stack(A).unwrap().conn_count(),
            0,
            "dangling TCP state on the peer after C2 death"
        );
    }

    /// Scheduled downtime windows (chaos layer): the host is down inside
    /// the window and answers again after it ends.
    #[test]
    fn scheduled_host_state_transitions_fire() {
        let mut net = net();
        net.add_service_host(B, Box::new(Upper));
        net.add_external_host(A);
        net.schedule_host_state(B, SimTime::EPOCH + SimDuration::from_secs(5), false);
        net.schedule_host_state(B, SimTime::EPOCH + SimDuration::from_secs(20), true);
        // Before the window: connects fine.
        let s1 = net.ext_tcp_connect(A, B, 7);
        net.run_for(SimDuration::from_secs(2));
        assert!(net.ext_events(A).contains(&SockEvent::Connected(s1)));
        net.ext_tcp_abort(A, s1);
        // Inside the window: SYN times out.
        net.run_until(SimTime::EPOCH + SimDuration::from_secs(8));
        let s2 = net.ext_tcp_connect(A, B, 7);
        net.run_for(SimDuration::from_secs(8));
        let evs = net.ext_events(A);
        assert!(
            evs.contains(&SockEvent::ConnectFailed {
                sock: s2,
                reason: ConnectError::TimedOut
            }),
            "{evs:?}"
        );
        // After the window: back up.
        net.run_until(SimTime::EPOCH + SimDuration::from_secs(21));
        let s3 = net.ext_tcp_connect(A, B, 7);
        net.run_for(SimDuration::from_secs(2));
        assert!(net.ext_events(A).contains(&SockEvent::Connected(s3)));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let mut net = Network::new(SimTime::EPOCH, 7);
            net.faults.loss = 0.3;
            net.add_service_host(B, Box::new(Upper));
            net.add_external_host(A);
            net.start_capture(A);
            for _ in 0..20 {
                let s = net.ext_tcp_connect(A, B, 7);
                net.run_for(SimDuration::from_secs(1));
                net.ext_tcp_send(A, s, b"abc");
                net.run_for(SimDuration::from_secs(5));
            }
            net.stop_capture(A)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}
