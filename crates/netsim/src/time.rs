//! Virtual time and the study calendar.
//!
//! All timestamps in the simulation are [`SimTime`]: microseconds since the
//! study epoch, **2021-03-01 00:00 UTC** (day 0). The paper's measurement
//! ran March 2021 – March 2022 and reports weekly activity using a
//! non-contiguous mapping of 31 "study weeks" onto calendar weeks
//! (Appendix E); [`study_week_of_day`] reproduces that mapping.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Seconds in one day.
pub const SECS_PER_DAY: u64 = 86_400;

/// A span of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }
    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }
    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }
    /// From minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration::from_secs(m * 60)
    }
    /// From hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration::from_secs(h * 3600)
    }
    /// From days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration::from_secs(d * SECS_PER_DAY)
    }
    /// Total microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    /// Total whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }
    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }
    /// Saturating multiply by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// An instant of virtual time: microseconds since the study epoch
/// (2021-03-01 00:00 UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The study epoch itself.
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from a day index plus seconds within the day.
    pub const fn from_day(day: u32, secs_into_day: u64) -> Self {
        SimTime(day as u64 * SECS_PER_DAY * MICROS_PER_SEC + secs_into_day * MICROS_PER_SEC)
    }

    /// Microseconds since epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole days since epoch (the paper's "day number").
    pub const fn day(self) -> u32 {
        (self.0 / (SECS_PER_DAY * MICROS_PER_SEC)) as u32
    }

    /// Seconds into the current day.
    pub const fn secs_into_day(self) -> u64 {
        (self.0 / MICROS_PER_SEC) % SECS_PER_DAY
    }

    /// Elapsed duration since an earlier instant (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day();
        let s = self.secs_into_day();
        write!(
            f,
            "d{:03} {:02}:{:02}:{:02}",
            day,
            s / 3600,
            (s / 60) % 60,
            s % 60
        )
    }
}

/// Number of days in the study window. Collection ran March 2021 – March
/// 2022 and the last study week (calendar week 12 of 2022, per Appendix E)
/// ends in late March 2022, 392 days after the epoch.
pub const STUDY_DAYS: u32 = 392;

/// The paper's 31 study weeks (Appendix E): study weeks 1..=31 map onto
/// calendar weeks with gaps ("disruption of the service, not observing
/// MIPS 32b samples, or not detecting any C2 server").
///
/// * Study week 1  → calendar week 14 of 2021
/// * Study weeks 2..=11 → calendar weeks 24..=33 of 2021
/// * Study weeks 12..=20 → calendar weeks 44..=52 of 2021
/// * Study weeks 21..=31 → calendar weeks 2..=12 of 2022
///
/// Returns `None` for days that fall outside the observed study weeks.
pub fn study_week_of_day(day: u32) -> Option<u32> {
    // Day 0 = 2021-03-01, a Monday, which opens ISO week 9 of 2021.
    // Calendar week n of 2021 therefore starts at day (n - 9) * 7; 2021
    // has 52 ISO weeks, so week w of 2022 has continued index 52 + w.
    let w = 9 + day / 7;
    match w {
        14 => Some(1),
        24..=33 => Some(2 + (w - 24)),
        44..=52 => Some(12 + (w - 44)),
        // 2022: calendar weeks 2..=12 == continued indexes 54..=64.
        54..=64 => Some(21 + (w - 54)),
        _ => None,
    }
}

/// Total number of study weeks the paper plots in Figure 1.
pub const STUDY_WEEKS: u32 = 31;

/// Day range `[start, end)` covered by a study week (inverse of
/// [`study_week_of_day`]). Returns `None` for weeks outside 1..=31.
pub fn days_of_study_week(week: u32) -> Option<std::ops::Range<u32>> {
    let cal = match week {
        1 => 14,
        2..=11 => 24 + (week - 2),
        12..=20 => 44 + (week - 12),
        21..=31 => 54 + (week - 21),
        _ => return None,
    };
    let start = (cal - 9) * 7;
    Some(start..start + 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1).as_micros(), MICROS_PER_SEC);
        assert_eq!(SimDuration::from_days(2), SimDuration::from_hours(48));
        assert_eq!(SimDuration::from_mins(3), SimDuration::from_secs(180));
        assert_eq!(SimDuration::from_millis(1500).as_secs(), 1);
    }

    #[test]
    fn time_day_arithmetic() {
        let t = SimTime::from_day(10, 3600);
        assert_eq!(t.day(), 10);
        assert_eq!(t.secs_into_day(), 3600);
        let u = t + SimDuration::from_days(1);
        assert_eq!(u.day(), 11);
        assert_eq!(u.since(t), SimDuration::from_days(1));
    }

    #[test]
    fn display_is_readable() {
        let t = SimTime::from_day(5, 7265);
        assert_eq!(t.to_string(), "d005 02:01:05");
    }

    #[test]
    fn study_week_mapping_has_31_weeks() {
        let mut seen = std::collections::BTreeSet::new();
        for day in 0..STUDY_DAYS {
            if let Some(w) = study_week_of_day(day) {
                assert!((1..=STUDY_WEEKS).contains(&w), "week {w} out of range");
                seen.insert(w);
            }
        }
        assert_eq!(seen.len(), STUDY_WEEKS as usize);
        // Weeks are visited in increasing order of day.
        let mut last = 0;
        for day in 0..STUDY_DAYS {
            if let Some(w) = study_week_of_day(day) {
                assert!(w >= last);
                last = w;
            }
        }
    }

    #[test]
    fn study_week_1_is_april_2021() {
        // Calendar week 14 begins (14-9)*7 = day 35 = 2021-04-05.
        assert_eq!(study_week_of_day(35), Some(1));
        assert_eq!(study_week_of_day(34), None);
        assert_eq!(study_week_of_day(41), Some(1));
        assert_eq!(study_week_of_day(42), None); // week 15 unobserved
    }

    #[test]
    fn sub_is_saturating() {
        let t = SimTime::from_day(0, 10);
        assert_eq!((t - SimDuration::from_days(5)).as_micros(), 0);
    }
}

#[cfg(test)]
mod inverse_tests {
    use super::*;

    #[test]
    fn week_ranges_invert_the_mapping() {
        for w in 1..=STUDY_WEEKS {
            let r = days_of_study_week(w).unwrap();
            for d in r {
                assert_eq!(study_week_of_day(d), Some(w), "day {d} week {w}");
            }
        }
        assert!(days_of_study_week(0).is_none());
        assert!(days_of_study_week(32).is_none());
    }
}
