//! Authoritative DNS service for the simulated Internet.
//!
//! A DNS zone holds A records that the world model can update over time
//! (C2 domains re-point as operators move servers). [`DnsService`] is the
//! [`crate::net::Service`] that answers queries on UDP 53;
//! multiple services (the "real" resolver and the sandbox's fake resolver)
//! can share one zone through the cloneable [`DnsHandle`].

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

use malnet_wire::dns::{DnsMessage, DomainName};

use crate::net::{Service, ServiceCtx};
use crate::stack::SockEvent;

/// The conventional resolver address every simulated host uses.
pub const RESOLVER_IP: Ipv4Addr = Ipv4Addr::new(9, 9, 9, 9);

#[derive(Debug, Default)]
struct ZoneData {
    records: HashMap<DomainName, Vec<Ipv4Addr>>,
    queries_served: u64,
}

/// A shared, mutable DNS zone.
///
/// Thread-safe so a [`DnsService`] can live inside a `Network` that is
/// moved to a worker thread (parallel contained activation).
#[derive(Debug, Clone, Default)]
pub struct DnsHandle(Arc<Mutex<ZoneData>>);

impl DnsHandle {
    /// Create an empty zone.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace the A records for a name.
    pub fn set(&self, name: DomainName, addrs: Vec<Ipv4Addr>) {
        self.0.lock().unwrap().records.insert(name, addrs);
    }

    /// Remove a name entirely (future queries get NXDOMAIN).
    pub fn remove(&self, name: &DomainName) {
        self.0.lock().unwrap().records.remove(name);
    }

    /// Current A records for a name.
    pub fn lookup(&self, name: &DomainName) -> Option<Vec<Ipv4Addr>> {
        self.0.lock().unwrap().records.get(name).cloned()
    }

    /// Number of queries the service answered.
    pub fn queries_served(&self) -> u64 {
        self.0.lock().unwrap().queries_served
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap().records.len()
    }

    /// True if the zone has no records.
    pub fn is_empty(&self) -> bool {
        self.0.lock().unwrap().records.is_empty()
    }
}

/// The DNS server: answers A queries on UDP 53 from its zone.
#[derive(Debug)]
pub struct DnsService {
    zone: DnsHandle,
}

impl DnsService {
    /// Create a service answering from `zone`.
    pub fn new(zone: DnsHandle) -> Self {
        DnsService { zone }
    }
}

impl Service for DnsService {
    fn start(&mut self, ctx: &mut ServiceCtx<'_>) {
        ctx.udp_bind(53);
    }

    fn on_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: SockEvent) {
        let SockEvent::UdpData { port, src, data } = ev else {
            return;
        };
        if port != 53 {
            return;
        }
        let Ok(query) = DnsMessage::decode(&data) else {
            return; // malformed query: silently dropped, like most resolvers
        };
        if query.is_response {
            return;
        }
        self.zone.0.lock().unwrap().queries_served += 1;
        let reply = match self.zone.lookup(&query.question) {
            Some(addrs) if !addrs.is_empty() => {
                DnsMessage::answer(query.id, query.question.clone(), &addrs)
            }
            _ => DnsMessage::nxdomain(query.id, query.question.clone()),
        };
        ctx.udp_send(53, src.0, src.1, reply.encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use crate::time::{SimDuration, SimTime};

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

    #[test]
    fn resolves_known_name() {
        let zone = DnsHandle::new();
        let name = DomainName::new("cnc.botnet.example").unwrap();
        zone.set(name.clone(), vec![Ipv4Addr::new(10, 1, 0, 5)]);
        let mut net = Network::new(SimTime::EPOCH, 1);
        net.add_service_host(RESOLVER_IP, Box::new(DnsService::new(zone.clone())));
        net.add_external_host(CLIENT);
        net.ext_udp_bind(CLIENT, 40000);
        let q = DnsMessage::query(99, name.clone());
        net.ext_udp_send(CLIENT, 40000, RESOLVER_IP, 53, q.encode());
        net.run_for(SimDuration::from_secs(2));
        let evs = net.ext_events(CLIENT);
        let data = evs
            .iter()
            .find_map(|e| match e {
                SockEvent::UdpData { data, .. } => Some(data.clone()),
                _ => None,
            })
            .expect("got a reply");
        let reply = DnsMessage::decode(&data).unwrap();
        assert_eq!(reply.id, 99);
        assert_eq!(reply.answers[0].1, Ipv4Addr::new(10, 1, 0, 5));
        assert_eq!(zone.queries_served(), 1);
    }

    #[test]
    fn unknown_name_is_nxdomain() {
        let zone = DnsHandle::new();
        let mut net = Network::new(SimTime::EPOCH, 1);
        net.add_service_host(RESOLVER_IP, Box::new(DnsService::new(zone)));
        net.add_external_host(CLIENT);
        net.ext_udp_bind(CLIENT, 40000);
        let name = DomainName::new("nope.example").unwrap();
        net.ext_udp_send(
            CLIENT,
            40000,
            RESOLVER_IP,
            53,
            DnsMessage::query(1, name).encode(),
        );
        net.run_for(SimDuration::from_secs(2));
        let evs = net.ext_events(CLIENT);
        let data = evs
            .iter()
            .find_map(|e| match e {
                SockEvent::UdpData { data, .. } => Some(data.clone()),
                _ => None,
            })
            .expect("got a reply");
        let reply = DnsMessage::decode(&data).unwrap();
        assert_eq!(reply.rcode, malnet_wire::dns::Rcode::NxDomain);
    }

    #[test]
    fn record_updates_take_effect() {
        let zone = DnsHandle::new();
        let name = DomainName::new("moving.example").unwrap();
        zone.set(name.clone(), vec![Ipv4Addr::new(1, 1, 1, 1)]);
        assert_eq!(zone.lookup(&name).unwrap()[0], Ipv4Addr::new(1, 1, 1, 1));
        zone.set(name.clone(), vec![Ipv4Addr::new(2, 2, 2, 2)]);
        assert_eq!(zone.lookup(&name).unwrap()[0], Ipv4Addr::new(2, 2, 2, 2));
        zone.remove(&name);
        assert!(zone.lookup(&name).is_none());
    }

    #[test]
    fn malformed_queries_are_dropped() {
        let zone = DnsHandle::new();
        let mut net = Network::new(SimTime::EPOCH, 1);
        net.add_service_host(RESOLVER_IP, Box::new(DnsService::new(zone.clone())));
        net.add_external_host(CLIENT);
        net.ext_udp_bind(CLIENT, 40000);
        net.ext_udp_send(CLIENT, 40000, RESOLVER_IP, 53, vec![1, 2, 3]);
        net.run_for(SimDuration::from_secs(2));
        assert!(net.ext_events(CLIENT).is_empty());
        assert_eq!(zone.queries_served(), 0);
    }
}
