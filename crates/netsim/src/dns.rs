//! Authoritative DNS service for the simulated Internet.
//!
//! A DNS zone holds A records that the world model can update over time
//! (C2 domains re-point as operators move servers). [`DnsService`] is the
//! [`crate::net::Service`] that answers queries on UDP 53;
//! multiple services (the "real" resolver and the sandbox's fake resolver)
//! can share one zone through the cloneable [`DnsHandle`].

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

use malnet_prng::rngs::StdRng;
use malnet_prng::Rng;
use malnet_wire::dns::{DnsMessage, DomainName};

use crate::net::{Service, ServiceCtx};
use crate::stack::SockEvent;

/// The conventional resolver address every simulated host uses.
pub const RESOLVER_IP: Ipv4Addr = Ipv4Addr::new(9, 9, 9, 9);

/// How an injected DNS failure manifests for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsFailure {
    /// The query is silently dropped (resolver overloaded / path loss).
    Drop,
    /// The resolver answers SERVFAIL.
    ServFail,
    /// The resolver lies with NXDOMAIN for an existing name.
    NxDomain,
}

/// Fault-injection policy for DNS services, carried by the
/// [`crate::net::Network`] like [`crate::net::LinkFaults`] and applied by
/// every [`DnsService`] on that network.
///
/// All rates default to 0.0, in which case `decide` never draws from the
/// RNG — a fault-free network is byte-identical to one that predates this
/// knob (the chaos layer's `FaultPlan::none()` guarantee).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DnsFaults {
    /// Probability a query is silently dropped.
    pub drop_rate: f64,
    /// Probability a query is answered SERVFAIL.
    pub servfail_rate: f64,
    /// Probability a query is answered NXDOMAIN regardless of the zone.
    pub nxdomain_rate: f64,
}

impl DnsFaults {
    /// Is any failure mode configured?
    pub fn any(&self) -> bool {
        self.drop_rate > 0.0 || self.servfail_rate > 0.0 || self.nxdomain_rate > 0.0
    }

    /// Decide the fate of one query. Draws exactly one RNG value when any
    /// rate is non-zero and none otherwise.
    pub fn decide(&self, rng: &mut StdRng) -> Option<DnsFailure> {
        if !self.any() {
            return None;
        }
        let draw: f64 = rng.gen();
        if draw < self.drop_rate {
            Some(DnsFailure::Drop)
        } else if draw < self.drop_rate + self.servfail_rate {
            Some(DnsFailure::ServFail)
        } else if draw < self.drop_rate + self.servfail_rate + self.nxdomain_rate {
            Some(DnsFailure::NxDomain)
        } else {
            None
        }
    }
}

#[derive(Debug, Default)]
struct ZoneData {
    // Point queries only (insert/remove/get/len); answers come from the
    // per-name Vec, so hash order is unobservable. lint: hash-ok
    records: HashMap<DomainName, Vec<Ipv4Addr>>,
    queries_served: u64,
}

/// A shared, mutable DNS zone.
///
/// Thread-safe so a [`DnsService`] can live inside a `Network` that is
/// moved to a worker thread (parallel contained activation).
#[derive(Debug, Clone, Default)]
pub struct DnsHandle(Arc<Mutex<ZoneData>>);

impl DnsHandle {
    /// Create an empty zone.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace the A records for a name.
    pub fn set(&self, name: DomainName, addrs: Vec<Ipv4Addr>) {
        self.0.lock().unwrap().records.insert(name, addrs);
    }

    /// Remove a name entirely (future queries get NXDOMAIN).
    pub fn remove(&self, name: &DomainName) {
        self.0.lock().unwrap().records.remove(name);
    }

    /// Current A records for a name.
    pub fn lookup(&self, name: &DomainName) -> Option<Vec<Ipv4Addr>> {
        self.0.lock().unwrap().records.get(name).cloned()
    }

    /// Number of queries the service answered.
    pub fn queries_served(&self) -> u64 {
        self.0.lock().unwrap().queries_served
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap().records.len()
    }

    /// True if the zone has no records.
    pub fn is_empty(&self) -> bool {
        self.0.lock().unwrap().records.is_empty()
    }
}

/// The DNS server: answers A queries on UDP 53 from its zone.
#[derive(Debug)]
pub struct DnsService {
    zone: DnsHandle,
}

impl DnsService {
    /// Create a service answering from `zone`.
    pub fn new(zone: DnsHandle) -> Self {
        DnsService { zone }
    }
}

impl Service for DnsService {
    fn start(&mut self, ctx: &mut ServiceCtx<'_>) {
        ctx.udp_bind(53);
    }

    fn on_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: SockEvent) {
        let SockEvent::UdpData { port, src, data } = ev else {
            return;
        };
        if port != 53 {
            return;
        }
        let Ok(query) = DnsMessage::decode(&data) else {
            return; // malformed query: silently dropped, like most resolvers
        };
        if query.is_response {
            return;
        }
        self.zone.0.lock().unwrap().queries_served += 1;
        // Fault injection (chaos layer): the network's DNS fault policy
        // may drop the query or corrupt the verdict.
        let faults = ctx.dns_faults();
        let injected = faults.decide(ctx.rng());
        if injected.is_some() {
            ctx.note_dns_fault();
        }
        let reply = match injected {
            Some(DnsFailure::Drop) => return,
            Some(DnsFailure::ServFail) => DnsMessage::servfail(query.id, query.question.clone()),
            Some(DnsFailure::NxDomain) => DnsMessage::nxdomain(query.id, query.question.clone()),
            None => match self.zone.lookup(&query.question) {
                Some(addrs) if !addrs.is_empty() => {
                    DnsMessage::answer(query.id, query.question.clone(), &addrs)
                }
                _ => DnsMessage::nxdomain(query.id, query.question.clone()),
            },
        };
        ctx.udp_send(53, src.0, src.1, reply.encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use crate::time::{SimDuration, SimTime};

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

    #[test]
    fn resolves_known_name() {
        let zone = DnsHandle::new();
        let name = DomainName::new("cnc.botnet.example").unwrap();
        zone.set(name.clone(), vec![Ipv4Addr::new(10, 1, 0, 5)]);
        let mut net = Network::new(SimTime::EPOCH, 1);
        net.add_service_host(RESOLVER_IP, Box::new(DnsService::new(zone.clone())));
        net.add_external_host(CLIENT);
        net.ext_udp_bind(CLIENT, 40000);
        let q = DnsMessage::query(99, name.clone());
        net.ext_udp_send(CLIENT, 40000, RESOLVER_IP, 53, q.encode());
        net.run_for(SimDuration::from_secs(2));
        let evs = net.ext_events(CLIENT);
        let data = evs
            .iter()
            .find_map(|e| match e {
                SockEvent::UdpData { data, .. } => Some(data.clone()),
                _ => None,
            })
            .expect("got a reply");
        let reply = DnsMessage::decode(&data).unwrap();
        assert_eq!(reply.id, 99);
        assert_eq!(reply.answers[0].1, Ipv4Addr::new(10, 1, 0, 5));
        assert_eq!(zone.queries_served(), 1);
    }

    #[test]
    fn unknown_name_is_nxdomain() {
        let zone = DnsHandle::new();
        let mut net = Network::new(SimTime::EPOCH, 1);
        net.add_service_host(RESOLVER_IP, Box::new(DnsService::new(zone)));
        net.add_external_host(CLIENT);
        net.ext_udp_bind(CLIENT, 40000);
        let name = DomainName::new("nope.example").unwrap();
        net.ext_udp_send(
            CLIENT,
            40000,
            RESOLVER_IP,
            53,
            DnsMessage::query(1, name).encode(),
        );
        net.run_for(SimDuration::from_secs(2));
        let evs = net.ext_events(CLIENT);
        let data = evs
            .iter()
            .find_map(|e| match e {
                SockEvent::UdpData { data, .. } => Some(data.clone()),
                _ => None,
            })
            .expect("got a reply");
        let reply = DnsMessage::decode(&data).unwrap();
        assert_eq!(reply.rcode, malnet_wire::dns::Rcode::NxDomain);
    }

    #[test]
    fn record_updates_take_effect() {
        let zone = DnsHandle::new();
        let name = DomainName::new("moving.example").unwrap();
        zone.set(name.clone(), vec![Ipv4Addr::new(1, 1, 1, 1)]);
        assert_eq!(zone.lookup(&name).unwrap()[0], Ipv4Addr::new(1, 1, 1, 1));
        zone.set(name.clone(), vec![Ipv4Addr::new(2, 2, 2, 2)]);
        assert_eq!(zone.lookup(&name).unwrap()[0], Ipv4Addr::new(2, 2, 2, 2));
        zone.remove(&name);
        assert!(zone.lookup(&name).is_none());
    }

    /// Drive `n` queries for `name` against a resolver with the given
    /// fault policy; returns the decoded replies (dropped queries simply
    /// produce no reply).
    fn query_n(faults: DnsFaults, name: &DomainName, n: u16) -> Vec<DnsMessage> {
        let zone = DnsHandle::new();
        zone.set(name.clone(), vec![Ipv4Addr::new(10, 1, 0, 5)]);
        let mut net = Network::new(SimTime::EPOCH, 99);
        net.dns_faults = faults;
        net.add_service_host(RESOLVER_IP, Box::new(DnsService::new(zone)));
        net.add_external_host(CLIENT);
        net.ext_udp_bind(CLIENT, 40000);
        for id in 0..n {
            net.ext_udp_send(
                CLIENT,
                40000,
                RESOLVER_IP,
                53,
                DnsMessage::query(id, name.clone()).encode(),
            );
            net.run_for(SimDuration::from_secs(1));
        }
        net.ext_events(CLIENT)
            .iter()
            .filter_map(|e| match e {
                SockEvent::UdpData { data, .. } => DnsMessage::decode(data).ok(),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn fault_free_policy_never_draws_or_fails() {
        let name = DomainName::new("stable.example").unwrap();
        let replies = query_n(DnsFaults::default(), &name, 8);
        assert_eq!(replies.len(), 8);
        assert!(replies
            .iter()
            .all(|r| r.rcode == malnet_wire::dns::Rcode::NoError));
    }

    #[test]
    fn injected_faults_drop_and_corrupt_verdicts() {
        let name = DomainName::new("chaotic.example").unwrap();
        // All three modes at once; every query must hit one of them.
        let faults = DnsFaults {
            drop_rate: 0.4,
            servfail_rate: 0.3,
            nxdomain_rate: 0.3,
        };
        let replies = query_n(faults, &name, 40);
        assert!(replies.len() < 40, "no query was ever dropped");
        assert!(replies
            .iter()
            .any(|r| r.rcode == malnet_wire::dns::Rcode::ServFail));
        assert!(replies
            .iter()
            .any(|r| r.rcode == malnet_wire::dns::Rcode::NxDomain));
        assert!(replies
            .iter()
            .all(|r| r.rcode != malnet_wire::dns::Rcode::NoError));
    }

    #[test]
    fn fault_decisions_are_seed_deterministic() {
        let name = DomainName::new("repeat.example").unwrap();
        let faults = DnsFaults {
            drop_rate: 0.2,
            servfail_rate: 0.2,
            nxdomain_rate: 0.2,
        };
        let a: Vec<_> = query_n(faults, &name, 30)
            .into_iter()
            .map(|r| (r.id, r.rcode))
            .collect();
        let b: Vec<_> = query_n(faults, &name, 30)
            .into_iter()
            .map(|r| (r.id, r.rcode))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_queries_are_dropped() {
        let zone = DnsHandle::new();
        let mut net = Network::new(SimTime::EPOCH, 1);
        net.add_service_host(RESOLVER_IP, Box::new(DnsService::new(zone.clone())));
        net.add_external_host(CLIENT);
        net.ext_udp_bind(CLIENT, 40000);
        net.ext_udp_send(CLIENT, 40000, RESOLVER_IP, 53, vec![1, 2, 3]);
        net.run_for(SimDuration::from_secs(2));
        assert!(net.ext_events(CLIENT).is_empty());
        assert_eq!(zone.queries_served(), 0);
    }
}
