//! Reusable application services for the simulated Internet.
//!
//! * [`HttpFileServer`] — a minimal HTTP/1.0 file server. The world model
//!   uses it as the malware **downloader server**: exploit payloads fetch
//!   loader scripts (`wget.sh`, `t8UsA2.sh`, …) from these hosts, usually
//!   co-located with the C2 (paper §3.1).
//! * [`BannerService`] — greets every connection with a protocol banner
//!   and closes. The paper's probing methodology filters out "hosts that
//!   present a well-known banner (such as Apache or Nginx)"; these hosts
//!   are the decoys that exercise that filter.
//! * [`SinkService`] — accepts connections and swallows data (a quiet
//!   non-C2 host that completes handshakes).

use std::collections::HashMap;

use crate::net::{Service, ServiceCtx};
use crate::stack::SockEvent;

/// A minimal HTTP/1.0 file server on a configurable port (default 80).
#[derive(Debug)]
pub struct HttpFileServer {
    port: u16,
    // Looked up by requested path only, never iterated. lint: hash-ok
    files: HashMap<String, Vec<u8>>,
    requests: Vec<String>,
    // Per-socket reassembly buffers, point-accessed by id. lint: hash-ok
    buf: HashMap<crate::stack::SockId, Vec<u8>>,
}

impl HttpFileServer {
    /// Serve `files` (path → body) on `port`.
    // Moved into the lookup-only `files` field above. lint: hash-ok
    pub fn new(port: u16, files: HashMap<String, Vec<u8>>) -> Self {
        HttpFileServer {
            port,
            files,
            requests: Vec::new(),
            buf: HashMap::new(), // lint: hash-ok
        }
    }

    /// Paths requested so far (diagnostics).
    pub fn requests(&self) -> &[String] {
        &self.requests
    }
}

impl Service for HttpFileServer {
    fn start(&mut self, ctx: &mut ServiceCtx<'_>) {
        ctx.tcp_listen(self.port);
    }

    fn on_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: SockEvent) {
        match ev {
            SockEvent::TcpData { sock, data } => {
                let buf = self.buf.entry(sock).or_default();
                buf.extend_from_slice(&data);
                // A complete request ends with CRLFCRLF.
                if let Some(pos) = find_subslice(buf, b"\r\n\r\n") {
                    let head = String::from_utf8_lossy(&buf[..pos]).to_string();
                    self.buf.remove(&sock);
                    let path = head
                        .lines()
                        .next()
                        .and_then(|l| l.split_whitespace().nth(1))
                        .unwrap_or("/")
                        .to_string();
                    self.requests.push(path.clone());
                    let response = match self.files.get(&path) {
                        Some(body) => {
                            let mut r = format!(
                                "HTTP/1.0 200 OK\r\nServer: httpd\r\nContent-Length: {}\r\n\r\n",
                                body.len()
                            )
                            .into_bytes();
                            r.extend_from_slice(body);
                            r
                        }
                        None => b"HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec(),
                    };
                    ctx.tcp_send(sock, &response);
                    ctx.tcp_close(sock);
                }
            }
            SockEvent::PeerClosed { sock } | SockEvent::Reset { sock } => {
                self.buf.remove(&sock);
            }
            _ => {}
        }
    }
}

/// Greets each accepted connection with a fixed banner, then closes.
#[derive(Debug)]
pub struct BannerService {
    ports: Vec<u16>,
    banner: String,
}

impl BannerService {
    /// A service presenting `banner` on each of `ports`.
    pub fn new(ports: Vec<u16>, banner: &str) -> Self {
        BannerService {
            ports,
            banner: banner.to_string(),
        }
    }

    /// An Apache-flavoured decoy.
    pub fn apache(ports: Vec<u16>) -> Self {
        Self::new(ports, "Server: Apache/2.4.41 (Ubuntu)\r\n")
    }

    /// An nginx-flavoured decoy.
    pub fn nginx(ports: Vec<u16>) -> Self {
        Self::new(ports, "Server: nginx/1.18.0\r\n")
    }
}

impl Service for BannerService {
    fn start(&mut self, ctx: &mut ServiceCtx<'_>) {
        for p in self.ports.clone() {
            ctx.tcp_listen(p);
        }
    }

    fn on_event(&mut self, ctx: &mut ServiceCtx<'_>, ev: SockEvent) {
        if let SockEvent::Accepted { sock, .. } = ev {
            let banner = self.banner.clone().into_bytes();
            ctx.tcp_send(sock, &banner);
            ctx.tcp_close(sock);
        }
    }
}

/// Accepts connections on its ports and silently consumes everything.
#[derive(Debug)]
pub struct SinkService {
    ports: Vec<u16>,
    /// Total bytes swallowed.
    pub bytes: u64,
}

impl SinkService {
    /// A sink listening on `ports`.
    pub fn new(ports: Vec<u16>) -> Self {
        SinkService { ports, bytes: 0 }
    }
}

impl Service for SinkService {
    fn start(&mut self, ctx: &mut ServiceCtx<'_>) {
        for p in self.ports.clone() {
            ctx.tcp_listen(p);
        }
        for p in self.ports.clone() {
            ctx.udp_bind(p);
        }
    }

    fn on_event(&mut self, _ctx: &mut ServiceCtx<'_>, ev: SockEvent) {
        match ev {
            SockEvent::TcpData { data, .. } => self.bytes += data.len() as u64,
            SockEvent::UdpData { data, .. } => self.bytes += data.len() as u64,
            _ => {}
        }
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;
    use crate::time::{SimDuration, SimTime};
    use std::net::Ipv4Addr;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn drain_tcp_data(evs: &[SockEvent]) -> Vec<u8> {
        let mut out = Vec::new();
        for e in evs {
            if let SockEvent::TcpData { data, .. } = e {
                out.extend_from_slice(data);
            }
        }
        out
    }

    #[test]
    fn http_file_server_serves_loader() {
        let mut files = HashMap::new();
        files.insert("/wget.sh".to_string(), b"#!/bin/sh\nwget bot\n".to_vec());
        let mut net = Network::new(SimTime::EPOCH, 3);
        net.add_service_host(SERVER, Box::new(HttpFileServer::new(80, files)));
        net.add_external_host(CLIENT);
        let sock = net.ext_tcp_connect(CLIENT, SERVER, 80);
        net.run_for(SimDuration::from_secs(1));
        net.ext_tcp_send(CLIENT, sock, b"GET /wget.sh HTTP/1.0\r\n\r\n");
        net.run_for(SimDuration::from_secs(2));
        let evs = net.ext_events(CLIENT);
        let body = drain_tcp_data(&evs);
        let text = String::from_utf8_lossy(&body);
        assert!(text.starts_with("HTTP/1.0 200 OK"), "{text}");
        assert!(text.contains("wget bot"));
        assert!(evs
            .iter()
            .any(|e| matches!(e, SockEvent::PeerClosed { .. })));
    }

    #[test]
    fn http_404_for_unknown_path() {
        let mut net = Network::new(SimTime::EPOCH, 3);
        net.add_service_host(SERVER, Box::new(HttpFileServer::new(80, HashMap::new())));
        net.add_external_host(CLIENT);
        let sock = net.ext_tcp_connect(CLIENT, SERVER, 80);
        net.run_for(SimDuration::from_secs(1));
        net.ext_tcp_send(CLIENT, sock, b"GET /nothing HTTP/1.0\r\n\r\n");
        net.run_for(SimDuration::from_secs(2));
        let body = drain_tcp_data(&net.ext_events(CLIENT));
        assert!(String::from_utf8_lossy(&body).starts_with("HTTP/1.0 404"));
    }

    #[test]
    fn banner_service_greets_and_closes() {
        let mut net = Network::new(SimTime::EPOCH, 3);
        net.add_service_host(SERVER, Box::new(BannerService::apache(vec![666])));
        net.add_external_host(CLIENT);
        let _sock = net.ext_tcp_connect(CLIENT, SERVER, 666);
        net.run_for(SimDuration::from_secs(2));
        let evs = net.ext_events(CLIENT);
        let body = drain_tcp_data(&evs);
        assert!(String::from_utf8_lossy(&body).contains("Apache"));
        assert!(evs
            .iter()
            .any(|e| matches!(e, SockEvent::PeerClosed { .. })));
    }

    #[test]
    fn sink_counts_bytes() {
        let mut net = Network::new(SimTime::EPOCH, 3);
        net.add_service_host(SERVER, Box::new(SinkService::new(vec![5555])));
        net.add_external_host(CLIENT);
        let sock = net.ext_tcp_connect(CLIENT, SERVER, 5555);
        net.run_for(SimDuration::from_secs(1));
        net.ext_tcp_send(CLIENT, sock, &[0u8; 100]);
        net.ext_udp_send(CLIENT, 1, SERVER, 5555, vec![0u8; 50]);
        net.run_for(SimDuration::from_secs(2));
        // Can't reach inside the box; confirm via stats that data flowed.
        assert!(net.stats.delivered >= 4);
    }

    #[test]
    fn partial_http_requests_buffer_until_complete() {
        let mut files = HashMap::new();
        files.insert("/x".to_string(), b"ok".to_vec());
        let mut net = Network::new(SimTime::EPOCH, 3);
        net.add_service_host(SERVER, Box::new(HttpFileServer::new(80, files)));
        net.add_external_host(CLIENT);
        let sock = net.ext_tcp_connect(CLIENT, SERVER, 80);
        net.run_for(SimDuration::from_secs(1));
        net.ext_tcp_send(CLIENT, sock, b"GET /x HT");
        net.run_for(SimDuration::from_secs(1));
        assert!(drain_tcp_data(&net.ext_events(CLIENT)).is_empty());
        net.ext_tcp_send(CLIENT, sock, b"TP/1.0\r\n\r\n");
        net.run_for(SimDuration::from_secs(1));
        let body = drain_tcp_data(&net.ext_events(CLIENT));
        assert!(String::from_utf8_lossy(&body).contains("200 OK"));
    }
}
