//! Per-host socket table: a miniature sockets layer over [`crate::tcp`].
//!
//! Each simulated host owns a [`HostStack`]. Application code (a
//! [`crate::net::Service`] or the sandbox's emulated malware) uses the
//! small sockets API (`tcp_listen` / `tcp_connect` / `tcp_send` /
//! `udp_bind` / `udp_send` / …); incoming packets are demultiplexed by
//! [`HostStack::handle_packet`], which returns reply packets plus a list
//! of [`SockEvent`]s for the application.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use malnet_wire::icmp::IcmpMessage;
use malnet_wire::packet::{Packet, Transport};
use malnet_wire::tcp::TcpFlags;

use crate::tcp::{TcpConn, TcpEvent, TcpState};

/// Opaque socket identifier, unique within one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SockId(pub u64);

/// Why a connect attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectError {
    /// The peer answered with RST (port closed but host alive).
    Refused,
    /// No answer before the SYN timeout (host dead or dropping).
    TimedOut,
}

/// Events delivered to the application layer of a host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SockEvent {
    /// An active open completed.
    Connected(SockId),
    /// An active open failed.
    ConnectFailed {
        /// The socket that failed.
        sock: SockId,
        /// Failure reason.
        reason: ConnectError,
    },
    /// A listener accepted a connection (handshake complete).
    Accepted {
        /// Local listening port.
        listener_port: u16,
        /// The new connection's socket.
        sock: SockId,
        /// Remote endpoint.
        peer: (Ipv4Addr, u16),
    },
    /// Payload bytes arrived on a TCP connection.
    TcpData {
        /// The connection.
        sock: SockId,
        /// Bytes received, in order.
        data: Vec<u8>,
    },
    /// The peer closed its sending direction.
    PeerClosed {
        /// The connection.
        sock: SockId,
    },
    /// The connection was reset.
    Reset {
        /// The connection.
        sock: SockId,
    },
    /// A UDP datagram arrived on a bound port.
    UdpData {
        /// Local bound port.
        port: u16,
        /// Remote endpoint.
        src: (Ipv4Addr, u16),
        /// Datagram payload.
        data: Vec<u8>,
    },
    /// An ICMP message arrived (echo requests are auto-answered and not
    /// surfaced).
    IcmpIn {
        /// Sender address.
        from: Ipv4Addr,
        /// The message.
        msg: IcmpMessage,
    },
}

impl SockEvent {
    /// The socket this event concerns, if any.
    pub fn sock(&self) -> Option<SockId> {
        match self {
            SockEvent::Connected(s)
            | SockEvent::ConnectFailed { sock: s, .. }
            | SockEvent::Accepted { sock: s, .. }
            | SockEvent::TcpData { sock: s, .. }
            | SockEvent::PeerClosed { sock: s }
            | SockEvent::Reset { sock: s } => Some(*s),
            _ => None,
        }
    }
}

/// Output of feeding one packet to a stack.
#[derive(Debug, Default)]
pub struct StackOutput {
    /// Packets to transmit in response.
    pub replies: Vec<Packet>,
    /// Application events.
    pub events: Vec<SockEvent>,
}

type ConnKey = (u16, Ipv4Addr, u16); // (local port, remote ip, remote port)

/// The socket table of one host.
#[derive(Debug)]
pub struct HostStack {
    /// The host's address.
    pub ip: Ipv4Addr,
    next_sock: u64,
    next_ephemeral: u16,
    iss: u32,
    // Ordered maps: `abort_all` walks `conns`, and event emission order
    // must not depend on per-process hasher state.
    listeners: BTreeSet<u16>,
    udp_binds: BTreeSet<u16>,
    conns: BTreeMap<ConnKey, (SockId, TcpConn)>,
    by_sock: BTreeMap<SockId, ConnKey>,
    /// When true, closed UDP ports elicit ICMP port-unreachable and closed
    /// TCP ports elicit RST (a "live host"). When false the stack is
    /// silent, which the network uses to model firewalled hosts.
    pub responds_when_closed: bool,
}

impl HostStack {
    /// Create a stack for the given address.
    pub fn new(ip: Ipv4Addr) -> Self {
        HostStack {
            ip,
            next_sock: 1,
            next_ephemeral: 32768,
            iss: (u32::from(ip)).wrapping_mul(2654435761),
            listeners: BTreeSet::new(),
            udp_binds: BTreeSet::new(),
            conns: BTreeMap::new(),
            by_sock: BTreeMap::new(),
            responds_when_closed: true,
        }
    }

    fn new_sock(&mut self) -> SockId {
        let s = SockId(self.next_sock);
        self.next_sock += 1;
        s
    }

    fn next_iss(&mut self) -> u32 {
        self.iss = self.iss.wrapping_mul(1664525).wrapping_add(1013904223);
        self.iss
    }

    /// Allocate an ephemeral source port.
    pub fn ephemeral_port(&mut self) -> u16 {
        let p = self.next_ephemeral;
        self.next_ephemeral = if self.next_ephemeral >= 60999 {
            32768
        } else {
            self.next_ephemeral + 1
        };
        p
    }

    /// Start listening for TCP connections on `port`.
    pub fn tcp_listen(&mut self, port: u16) {
        self.listeners.insert(port);
    }

    /// Stop listening on `port` (existing connections unaffected).
    pub fn tcp_unlisten(&mut self, port: u16) {
        self.listeners.remove(&port);
    }

    /// Is anything listening on the given TCP port?
    pub fn is_listening(&self, port: u16) -> bool {
        self.listeners.contains(&port)
    }

    /// Bind a UDP port.
    pub fn udp_bind(&mut self, port: u16) {
        self.udp_binds.insert(port);
    }

    /// Unbind a UDP port.
    pub fn udp_unbind(&mut self, port: u16) {
        self.udp_binds.remove(&port);
    }

    /// Active-open a TCP connection from an ephemeral port.
    pub fn tcp_connect(&mut self, dst: Ipv4Addr, dport: u16) -> (SockId, Packet) {
        let sport = self.ephemeral_port();
        self.tcp_connect_from(sport, dst, dport)
    }

    /// Active-open from a chosen source port (DDoS code paths pick their
    /// own source ports).
    pub fn tcp_connect_from(&mut self, sport: u16, dst: Ipv4Addr, dport: u16) -> (SockId, Packet) {
        let iss = self.next_iss();
        let (conn, syn) = TcpConn::connect((self.ip, sport), (dst, dport), iss);
        let sock = self.new_sock();
        let key = (sport, dst, dport);
        self.conns.insert(key, (sock, conn));
        self.by_sock.insert(sock, key);
        (sock, syn)
    }

    /// Send bytes on an established connection.
    pub fn tcp_send(&mut self, sock: SockId, data: &[u8]) -> Vec<Packet> {
        match self.conn_mut(sock) {
            Some(conn) => conn.send(data),
            None => Vec::new(),
        }
    }

    /// Orderly close.
    pub fn tcp_close(&mut self, sock: SockId) -> Vec<Packet> {
        let out = match self.conn_mut(sock) {
            Some(conn) => conn.close().into_iter().collect(),
            None => Vec::new(),
        };
        self.gc(sock);
        out
    }

    /// Abortive close (RST).
    pub fn tcp_abort(&mut self, sock: SockId) -> Option<Packet> {
        let out = self.conn_mut(sock).and_then(|c| c.abort());
        self.gc(sock);
        out
    }

    /// Send a UDP datagram from `sport`.
    pub fn udp_send(&mut self, sport: u16, dst: Ipv4Addr, dport: u16, payload: Vec<u8>) -> Packet {
        Packet::udp(self.ip, sport, dst, dport, payload)
    }

    /// Send an ICMP message.
    pub fn icmp_send(&mut self, dst: Ipv4Addr, msg: IcmpMessage) -> Packet {
        Packet::icmp(self.ip, dst, msg)
    }

    /// Remote endpoint of a connection.
    pub fn peer(&self, sock: SockId) -> Option<(Ipv4Addr, u16)> {
        let key = self.by_sock.get(&sock)?;
        self.conns.get(key).map(|(_, c)| c.remote)
    }

    /// Local port of a connection.
    pub fn local_port(&self, sock: SockId) -> Option<u16> {
        self.by_sock.get(&sock).map(|k| k.0)
    }

    /// Connection state, if the socket exists.
    pub fn state(&self, sock: SockId) -> Option<TcpState> {
        let key = self.by_sock.get(&sock)?;
        self.conns.get(key).map(|(_, c)| c.state)
    }

    /// Number of live TCP connections.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    fn conn_mut(&mut self, sock: SockId) -> Option<&mut TcpConn> {
        let key = self.by_sock.get(&sock)?;
        self.conns.get_mut(key).map(|(_, c)| c)
    }

    fn gc(&mut self, sock: SockId) {
        if let Some(key) = self.by_sock.get(&sock) {
            if self
                .conns
                .get(key)
                .map(|(_, c)| c.is_closed())
                .unwrap_or(false)
            {
                let key = *key;
                self.conns.remove(&key);
                self.by_sock.remove(&sock);
            }
        }
    }

    /// Used by the network's connect-timeout event: if the socket is still
    /// in SYN-SENT, kill it and report the failure.
    pub fn connect_timeout_fired(&mut self, sock: SockId) -> Option<SockEvent> {
        let state = self.state(sock)?;
        if state == TcpState::SynSent {
            if let Some(key) = self.by_sock.remove(&sock) {
                self.conns.remove(&key);
            }
            Some(SockEvent::ConnectFailed {
                sock,
                reason: ConnectError::TimedOut,
            })
        } else {
            None
        }
    }

    /// Drop all connection state (used when a host goes down).
    pub fn reset_all(&mut self) {
        self.conns.clear();
        self.by_sock.clear();
    }

    /// Abort every connection, returning the RST notifications for the
    /// peers in canonical `(local port, peer ip, peer port)` order —
    /// `conns` is a `BTreeMap`, so draining it yields exactly that
    /// order with no explicit sort. Used by
    /// `Network::set_host_up(_, false)` so a dying host's peers are not
    /// left with dangling TCP state.
    pub fn abort_all(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        for (_, (_, mut conn)) in std::mem::take(&mut self.conns) {
            if let Some(rst) = conn.abort() {
                out.push(rst);
            }
        }
        self.by_sock.clear();
        out
    }

    /// Demultiplex one incoming packet.
    pub fn handle_packet(&mut self, pkt: &Packet) -> StackOutput {
        let mut out = StackOutput::default();
        if pkt.dst != self.ip {
            return out; // not ours; the network should not have delivered it
        }
        match &pkt.transport {
            Transport::Tcp { header, payload } => {
                let key = (header.dst_port, pkt.src, header.src_port);
                if let Some((sock, conn)) = self.conns.get_mut(&key) {
                    let sock = *sock;
                    let was_server_handshake = conn.state == TcpState::SynReceived;
                    let was_connecting = conn.state == TcpState::SynSent;
                    let (replies, evs) = conn.on_segment(header, payload);
                    out.replies.extend(replies);
                    for ev in evs {
                        out.events.push(match ev {
                            TcpEvent::Connected => {
                                if was_server_handshake {
                                    SockEvent::Accepted {
                                        listener_port: key.0,
                                        sock,
                                        peer: (key.1, key.2),
                                    }
                                } else {
                                    SockEvent::Connected(sock)
                                }
                            }
                            TcpEvent::Data(d) => SockEvent::TcpData { sock, data: d },
                            TcpEvent::PeerFin => SockEvent::PeerClosed { sock },
                            TcpEvent::Reset => {
                                if was_connecting {
                                    // RST answering our SYN: refused.
                                    SockEvent::ConnectFailed {
                                        sock,
                                        reason: ConnectError::Refused,
                                    }
                                } else {
                                    SockEvent::Reset { sock }
                                }
                            }
                        });
                    }
                    self.gc(sock);
                } else if header.flags.syn() && !header.flags.ack() {
                    if self.listeners.contains(&header.dst_port) {
                        let iss = self.next_iss();
                        let (conn, syn_ack) = TcpConn::accept(
                            (self.ip, header.dst_port),
                            (pkt.src, header.src_port),
                            iss,
                            header.seq,
                        );
                        let sock = self.new_sock();
                        self.conns.insert(key, (sock, conn));
                        self.by_sock.insert(sock, key);
                        out.replies.push(syn_ack);
                    } else if self.responds_when_closed {
                        // Closed port: RST.
                        out.replies.push(Packet::tcp(
                            self.ip,
                            header.dst_port,
                            pkt.src,
                            header.src_port,
                            0,
                            header.seq.wrapping_add(1),
                            TcpFlags::RST.union(TcpFlags::ACK),
                            vec![],
                        ));
                    }
                } else if header.flags.rst() {
                    // RST for an unknown connection: check whether it
                    // refuses a pending SYN we sent from that port.
                    // (Connection was already removed; nothing to do.)
                } else if self.responds_when_closed {
                    out.replies.push(Packet::tcp(
                        self.ip,
                        header.dst_port,
                        pkt.src,
                        header.src_port,
                        header.ack,
                        header.seq,
                        TcpFlags::RST,
                        vec![],
                    ));
                }
            }
            Transport::Udp { header, payload } => {
                if self.udp_binds.contains(&header.dst_port) {
                    out.events.push(SockEvent::UdpData {
                        port: header.dst_port,
                        src: (pkt.src, header.src_port),
                        data: payload.clone(),
                    });
                } else if self.responds_when_closed {
                    let mut original = Vec::with_capacity(32);
                    original
                        .extend_from_slice(&pkt.encode_ipv4()[..28.min(pkt.encode_ipv4().len())]);
                    out.replies.push(Packet::icmp(
                        self.ip,
                        pkt.src,
                        IcmpMessage::DestinationUnreachable {
                            code: 3,
                            payload: original,
                        },
                    ));
                }
            }
            Transport::Icmp(msg) => match msg {
                IcmpMessage::EchoRequest {
                    ident,
                    seq,
                    payload,
                } => {
                    out.replies.push(Packet::icmp(
                        self.ip,
                        pkt.src,
                        IcmpMessage::EchoReply {
                            ident: *ident,
                            seq: *seq,
                            payload: payload.clone(),
                        },
                    ));
                }
                other => out.events.push(SockEvent::IcmpIn {
                    from: pkt.src,
                    msg: other.clone(),
                }),
            },
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// Shuttle packets between two stacks until quiescent, collecting events.
    fn pump(
        a: &mut HostStack,
        b: &mut HostStack,
        initial: Vec<Packet>,
    ) -> Vec<(Ipv4Addr, SockEvent)> {
        let mut events = Vec::new();
        let mut inflight = initial;
        let mut guard = 0;
        while !inflight.is_empty() {
            guard += 1;
            assert!(guard < 100, "packet storm in test pump");
            let mut next = Vec::new();
            for pkt in inflight {
                let target = if pkt.dst == a.ip { &mut *a } else { &mut *b };
                let out = target.handle_packet(&pkt);
                let tip = target.ip;
                next.extend(out.replies);
                events.extend(out.events.into_iter().map(|e| (tip, e)));
            }
            inflight = next;
        }
        events
    }

    #[test]
    fn full_connect_accept_data_cycle() {
        let mut client = HostStack::new(A);
        let mut server = HostStack::new(B);
        server.tcp_listen(23);
        let (csock, syn) = client.tcp_connect(B, 23);
        let events = pump(&mut client, &mut server, vec![syn]);
        assert!(events
            .iter()
            .any(|(ip, e)| *ip == A && matches!(e, SockEvent::Connected(s) if *s == csock)));
        let acc: Vec<_> = events
            .iter()
            .filter(|(ip, e)| *ip == B && matches!(e, SockEvent::Accepted { .. }))
            .collect();
        assert_eq!(acc.len(), 1);
        // Send data client -> server.
        let data = client.tcp_send(csock, b"ping");
        let events = pump(&mut client, &mut server, data);
        assert!(events
            .iter()
            .any(|(ip, e)| *ip == B
                && matches!(e, SockEvent::TcpData { data, .. } if data == b"ping")));
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let mut client = HostStack::new(A);
        let mut server = HostStack::new(B);
        let (_csock, syn) = client.tcp_connect(B, 9999);
        let out = server.handle_packet(&syn);
        assert_eq!(out.replies.len(), 1);
        let rst = &out.replies[0];
        assert!(rst.tcp_flags().unwrap().rst());
        let out2 = client.handle_packet(rst);
        assert!(out2.events.iter().any(|e| matches!(
            e,
            SockEvent::ConnectFailed {
                reason: ConnectError::Refused,
                ..
            }
        )));
    }

    #[test]
    fn firewalled_host_is_silent() {
        let mut client = HostStack::new(A);
        let mut server = HostStack::new(B);
        server.responds_when_closed = false;
        let (_s, syn) = client.tcp_connect(B, 1312);
        let out = server.handle_packet(&syn);
        assert!(out.replies.is_empty());
        let udp = client.udp_send(5000, B, 1312, b"probe".to_vec());
        let out = server.handle_packet(&udp);
        assert!(out.replies.is_empty());
    }

    #[test]
    fn udp_bind_and_receive() {
        let mut client = HostStack::new(A);
        let mut server = HostStack::new(B);
        server.udp_bind(53);
        let q = client.udp_send(40000, B, 53, b"query".to_vec());
        let out = server.handle_packet(&q);
        assert_eq!(
            out.events,
            vec![SockEvent::UdpData {
                port: 53,
                src: (A, 40000),
                data: b"query".to_vec()
            }]
        );
    }

    #[test]
    fn udp_to_closed_port_gets_port_unreachable() {
        let mut client = HostStack::new(A);
        let mut server = HostStack::new(B);
        let q = client.udp_send(40000, B, 1000, b"x".to_vec());
        let out = server.handle_packet(&q);
        assert_eq!(out.replies.len(), 1);
        match &out.replies[0].transport {
            Transport::Icmp(IcmpMessage::DestinationUnreachable { code, .. }) => {
                assert_eq!(*code, 3)
            }
            other => panic!("expected ICMP unreachable, got {other:?}"),
        }
    }

    #[test]
    fn echo_request_is_auto_answered() {
        let mut a = HostStack::new(A);
        let mut b = HostStack::new(B);
        let ping = a.icmp_send(
            B,
            IcmpMessage::EchoRequest {
                ident: 77,
                seq: 1,
                payload: vec![1, 2, 3],
            },
        );
        let out = b.handle_packet(&ping);
        assert_eq!(out.replies.len(), 1);
        match &out.replies[0].transport {
            Transport::Icmp(IcmpMessage::EchoReply { ident, .. }) => assert_eq!(*ident, 77),
            other => panic!("expected echo reply, got {other:?}"),
        }
        assert!(out.events.is_empty());
        drop(a);
    }

    #[test]
    fn connect_timeout_only_fires_in_syn_sent() {
        let mut client = HostStack::new(A);
        let (sock, _syn) = client.tcp_connect(B, 23);
        let ev = client.connect_timeout_fired(sock);
        assert!(matches!(
            ev,
            Some(SockEvent::ConnectFailed {
                reason: ConnectError::TimedOut,
                ..
            })
        ));
        // Second firing: socket gone.
        assert!(client.connect_timeout_fired(sock).is_none());
    }

    #[test]
    fn close_cycle_garbage_collects() {
        let mut client = HostStack::new(A);
        let mut server = HostStack::new(B);
        server.tcp_listen(80);
        let (csock, syn) = client.tcp_connect(B, 80);
        pump(&mut client, &mut server, vec![syn]);
        assert_eq!(client.conn_count(), 1);
        assert_eq!(server.conn_count(), 1);
        let fins = client.tcp_close(csock);
        let events = pump(&mut client, &mut server, fins);
        let ssock = events
            .iter()
            .find_map(|(ip, e)| {
                if *ip == B {
                    if let SockEvent::PeerClosed { sock } = e {
                        return Some(*sock);
                    }
                }
                None
            })
            .expect("server saw FIN");
        let fins2 = server.tcp_close(ssock);
        pump(&mut client, &mut server, fins2);
        assert_eq!(client.conn_count(), 0);
        assert_eq!(server.conn_count(), 0);
    }

    #[test]
    fn ephemeral_ports_cycle_within_range() {
        let mut s = HostStack::new(A);
        s.next_ephemeral = 60998;
        assert_eq!(s.ephemeral_port(), 60998);
        assert_eq!(s.ephemeral_port(), 60999);
        assert_eq!(s.ephemeral_port(), 32768);
    }

    #[test]
    fn fixed_source_port_connect() {
        let mut client = HostStack::new(A);
        let (sock, syn) = client.tcp_connect_from(666, B, 23);
        assert_eq!(client.local_port(sock), Some(666));
        assert_eq!(syn.transport.src_port(), Some(666));
        assert_eq!(client.peer(sock), Some((B, 23)));
    }
}
