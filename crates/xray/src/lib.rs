//! `malnet-xray` — static binary triage for the MalNet corpus.
//!
//! The dynamic pipeline (`malnet-core`) recovers every fact from
//! *behaviour*: emulate the sample, watch the wire. This crate is the
//! static counterpart (Anwar et al., "Understanding IoT Malware by
//! Analyzing Endpoints in their Static Artifacts"): it looks at the raw
//! ELF bytes and, **without executing a single instruction**, answers
//!
//! 1. *is this a well-formed MIPS32 executable?* — structural lints that
//!    are truncation-safe and never panic on malformed bytes
//!    ([`lint`]);
//! 2. *what can it do?* — a linear-sweep + recursive-descent CFG over
//!    `.text` (via `malnet-mips`'s structured decoder) with
//!    syscall-reachability: which `socket`/`connect`/`send` syscalls are
//!    reachable from the entry point ([`cfg`]);
//! 3. *who does it talk to?* — candidate C2 endpoints from `.rodata`
//!    (strings, IPv4 literals, domains) and from
//!    immediate-materialization idioms: `lui`/`ori` constant
//!    propagation, sockaddr-shaped store sequences, and forward constant
//!    propagation through the sample's embedded MNBC bytecode
//!    ([`extract`]);
//! 4. a versioned `malnet.static_report` v1 JSON artifact ([`report`]).
//!
//! The pipeline runs [`analyze`] as its phase-0 triage stage; `core::eval`
//! cross-validates the static candidates against the dynamically
//! discovered D-C2s dataset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod extract;
pub mod lint;
pub mod report;

pub use extract::{Endpoint, Proto, Role, Source};
pub use lint::Lint;
pub use report::{StaticReport, SCHEMA, VERSION};

/// Run the full static triage over raw ELF bytes.
///
/// Total and panic-free on arbitrary input: malformed bytes produce a
/// report with `valid_elf == false` and the parse failure as a lint.
pub fn analyze(elf_bytes: &[u8]) -> StaticReport {
    let (parsed, lints) = lint::lint_bytes(elf_bytes);
    let Some(elf) = parsed else {
        return StaticReport {
            valid_elf: false,
            lints,
            ..StaticReport::default()
        };
    };
    let text = elf
        .segments
        .iter()
        .find(|s| s.executable)
        .map(|s| cfg::analyze_text(&s.data, s.vaddr, elf.entry))
        .unwrap_or_default();
    let rodata = extract::scan_rodata(&elf);
    let bytecode = extract::scan_bytecode(&elf);
    let mut endpoints = bytecode.endpoints.clone();
    endpoints.sort();
    endpoints.dedup();
    StaticReport {
        valid_elf: true,
        lints,
        entry: elf.entry,
        text,
        strings: rodata.strings,
        string_ipv4: rodata.ipv4,
        string_domains: rodata.domains,
        bytecode_records: bytecode.records,
        bytecode_skipped: bytecode.skipped,
        endpoints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malnet_botgen::binary::emit_elf;
    use malnet_botgen::programs::compile;
    use malnet_botgen::spec::{BehaviorSpec, C2Endpoint};
    use std::net::Ipv4Addr;

    fn build(spec: &BehaviorSpec) -> Vec<u8> {
        emit_elf(&compile(spec), b"junkjunk")
    }

    #[test]
    fn recovers_hardcoded_ip_c2s_without_execution() {
        let spec = BehaviorSpec {
            c2: vec![
                (C2Endpoint::Ip(Ipv4Addr::new(185, 10, 20, 30)), 23),
                (C2Endpoint::Ip(Ipv4Addr::new(91, 44, 3, 9)), 8080),
            ],
            ..BehaviorSpec::default()
        };
        let r = analyze(&build(&spec));
        assert!(r.valid_elf, "lints: {:?}", r.lints);
        let c2: Vec<String> = r.c2_candidates().map(|e| e.addr.clone()).collect();
        assert!(c2.contains(&"185.10.20.30".to_string()), "{c2:?}");
        assert!(c2.contains(&"91.44.3.9".to_string()), "{c2:?}");
        // Ports ride along.
        assert!(r
            .c2_candidates()
            .any(|e| e.addr == "185.10.20.30" && e.port == 23));
    }

    #[test]
    fn recovers_domain_c2_and_resolver() {
        let spec = BehaviorSpec {
            c2: vec![(C2Endpoint::Domain("cnc.dark.example".into()), 6667)],
            resolver: Ipv4Addr::new(9, 9, 9, 9),
            ..BehaviorSpec::default()
        };
        let r = analyze(&build(&spec));
        assert!(r
            .c2_candidates()
            .any(|e| e.addr == "cnc.dark.example" && e.port == 6667 && e.dns));
        // The hardcoded resolver is classified as such, not as C2.
        assert!(r
            .endpoints
            .iter()
            .any(|e| e.addr == "9.9.9.9" && e.role == Role::Resolver));
        assert!(!r.c2_candidates().any(|e| e.addr == "9.9.9.9"));
    }

    #[test]
    fn scan_targets_are_not_candidates() {
        // Scan destinations are base|rand — unknowable statically, and
        // must not pollute the candidate list.
        let spec = BehaviorSpec {
            c2: vec![(C2Endpoint::Ip(Ipv4Addr::new(5, 6, 7, 8)), 23)],
            scan_base: Ipv4Addr::new(100, 70, 0, 0),
            ..BehaviorSpec::default()
        };
        let r = analyze(&build(&spec));
        assert!(
            !r.endpoints.iter().any(|e| e.addr.starts_with("100.70.")),
            "{:?}",
            r.endpoints
        );
    }

    #[test]
    fn text_analysis_sees_network_syscalls() {
        let r = analyze(&build(&BehaviorSpec::default()));
        assert!(r.text.blocks > 0 && r.text.instructions > 100);
        assert!(r.text.net_capable(), "syscalls: {:?}", r.text.syscalls);
        assert!(r.text.sockaddr_sites > 0);
        assert!(r.text.materialized_consts > 0);
        assert_eq!(r.text.unknown_words, 0, "stub fully decodes");
    }

    #[test]
    fn malformed_input_never_panics() {
        assert!(!analyze(b"").valid_elf);
        assert!(!analyze(b"MZ\x90\x00").valid_elf);
        let good = build(&BehaviorSpec::default());
        for cut in [0, 1, 4, 51, 52, 80, good.len() / 2] {
            let _ = analyze(&good[..cut.min(good.len())]);
        }
        let mut bad = good.clone();
        for i in (0..bad.len()).step_by(7) {
            bad[i] ^= 0x55;
        }
        let _ = analyze(&bad);
    }

    #[test]
    fn report_json_parses_and_carries_schema() {
        let r = analyze(&build(&BehaviorSpec {
            c2: vec![(C2Endpoint::Ip(Ipv4Addr::new(1, 2, 3, 4)), 23)],
            ..BehaviorSpec::default()
        }));
        let v = malnet_telemetry::json::parse(&r.to_json()).expect("valid json");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("malnet.static_report")
        );
        assert_eq!(v.get("version").and_then(|n| n.as_u64()), Some(1));
        let eps = v.get("endpoints").and_then(|a| a.as_array()).unwrap();
        assert!(!eps.is_empty());
    }
}
