//! The versioned `malnet.static_report` JSON artifact.
//!
//! Serialization is hand-rolled (no external deps, like
//! `malnet-telemetry`'s report writer) and round-trips through
//! `malnet_telemetry::json::parse`. Consumers must check `schema` and
//! `version` before interpreting fields; additive changes bump
//! [`VERSION`].

use crate::cfg::TextAnalysis;
use crate::extract::{Endpoint, Role};
use crate::lint::Lint;

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "malnet.static_report";
/// Current schema version.
pub const VERSION: u64 = 1;

/// Everything the static pass learned about one binary.
#[derive(Debug, Clone, Default)]
pub struct StaticReport {
    /// Did the ELF parse at all?
    pub valid_elf: bool,
    /// Structural findings (empty for a clean file).
    pub lints: Vec<Lint>,
    /// Entry point vaddr (0 when unparseable).
    pub entry: u32,
    /// `.text` CFG / syscall-reachability analysis.
    pub text: TextAnalysis,
    /// Printable runs found in read-only data.
    pub strings: usize,
    /// Dotted-quad literals from the string sweep.
    pub string_ipv4: Vec<String>,
    /// Domain-shaped tokens from the string sweep.
    pub string_domains: Vec<String>,
    /// MNBC bytecode records decoded.
    pub bytecode_records: usize,
    /// MNBC bytecode records skipped as undecodable.
    pub bytecode_skipped: usize,
    /// Recovered endpoint candidates, sorted and deduplicated.
    pub endpoints: Vec<Endpoint>,
}

impl StaticReport {
    /// Endpoints classified as C2 check-in destinations — the set that
    /// `core::eval` cross-validates against the dynamic D-C2s dataset.
    pub fn c2_candidates(&self) -> impl Iterator<Item = &Endpoint> {
        self.endpoints.iter().filter(|e| e.role == Role::C2)
    }

    /// Serialize to schema-versioned JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str(&format!(
            "{{\"schema\":\"{SCHEMA}\",\"version\":{VERSION},\"valid_elf\":{},\"entry\":{},",
            self.valid_elf, self.entry
        ));
        s.push_str("\"lints\":[");
        for (i, l) in self.lints.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"code\":\"{}\",\"message\":\"{}\"}}",
                json_escape(l.code),
                json_escape(&l.message)
            ));
        }
        s.push_str("],");
        let t = &self.text;
        s.push_str(&format!(
            "\"text\":{{\"instructions\":{},\"unknown_words\":{},\"blocks\":{},\"edges\":{},\
             \"reachable_blocks\":{},\"reachable_instructions\":{},\"syscalls\":[{}],\
             \"unknown_syscall_sites\":{},\"materialized_consts\":{},\"sockaddr_sites\":{},\
             \"net_capable\":{}}},",
            t.instructions,
            t.unknown_words,
            t.blocks,
            t.edges,
            t.reachable_blocks,
            t.reachable_instructions,
            t.syscalls
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(","),
            t.unknown_syscall_sites,
            t.materialized_consts,
            t.sockaddr_sites,
            t.net_capable()
        ));
        s.push_str(&format!("\"strings\":{},", self.strings));
        s.push_str(&format!(
            "\"string_ipv4\":[{}],",
            join_strings(&self.string_ipv4)
        ));
        s.push_str(&format!(
            "\"string_domains\":[{}],",
            join_strings(&self.string_domains)
        ));
        s.push_str(&format!(
            "\"bytecode\":{{\"records\":{},\"skipped\":{}}},",
            self.bytecode_records, self.bytecode_skipped
        ));
        s.push_str("\"endpoints\":[");
        for (i, e) in self.endpoints.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"addr\":\"{}\",\"port\":{},\"proto\":\"{}\",\"role\":\"{}\",\
                 \"dns\":{},\"source\":\"{}\"}}",
                json_escape(&e.addr),
                e.port,
                e.proto.as_str(),
                e.role.as_str(),
                e.dns,
                e.source.as_str()
            ));
        }
        s.push_str("]}");
        s
    }
}

fn join_strings(v: &[String]) -> String {
    v.iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect::<Vec<_>>()
        .join(",")
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{Proto, Source};

    #[test]
    fn empty_report_is_valid_json() {
        let v = malnet_telemetry::json::parse(&StaticReport::default().to_json()).unwrap();
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(SCHEMA));
        assert_eq!(v.get("version").and_then(|n| n.as_u64()), Some(VERSION));
        assert_eq!(v.get("valid_elf").and_then(|b| b.as_bool()), Some(false));
    }

    #[test]
    fn endpoints_serialize_with_all_fields() {
        let r = StaticReport {
            valid_elf: true,
            endpoints: vec![Endpoint {
                addr: "1.2.3.4".into(),
                port: 23,
                proto: Proto::Tcp,
                role: Role::C2,
                dns: false,
                source: Source::Bytecode,
            }],
            ..StaticReport::default()
        };
        let v = malnet_telemetry::json::parse(&r.to_json()).unwrap();
        let eps = v.get("endpoints").and_then(|a| a.as_array()).unwrap();
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].get("addr").and_then(|s| s.as_str()), Some("1.2.3.4"));
        assert_eq!(eps[0].get("port").and_then(|n| n.as_u64()), Some(23));
        assert_eq!(eps[0].get("proto").and_then(|s| s.as_str()), Some("tcp"));
        assert_eq!(eps[0].get("role").and_then(|s| s.as_str()), Some("c2"));
    }

    #[test]
    fn escaping_survives_hostile_lint_messages() {
        let r = StaticReport {
            lints: vec![Lint {
                code: "elf.parse",
                message: "bad \"quote\"\\\n\u{1}".into(),
            }],
            ..StaticReport::default()
        };
        let v = malnet_telemetry::json::parse(&r.to_json()).unwrap();
        let lints = v.get("lints").and_then(|a| a.as_array()).unwrap();
        assert_eq!(
            lints[0].get("message").and_then(|s| s.as_str()),
            Some("bad \"quote\"\\\n\u{1}")
        );
    }
}
