//! Candidate C2 endpoint extraction from `.rodata`.
//!
//! Two independent passes:
//!
//! * [`scan_rodata`] — the classic `strings(1)` sweep: printable runs,
//!   dotted-quad IPv4 literals (loader/downloader URLs embedded in
//!   exploit payloads), and domain-shaped tokens.
//! * [`scan_bytecode`] — the high-precision pass. MalNet samples carry
//!   their behaviour as MNBC bytecode in `.rodata`; a forward
//!   constant-propagation walk over the decoded records pairs every
//!   `Ldi`-materialized IP with the `Connect`/`SendTo` that uses it,
//!   recovering `(addr, port, proto)` triples and classifying each as
//!   C2 check-in, DNS resolver, or P2P peer. Registers poisoned by
//!   `Rand` or network reads stay unknown, which is exactly why scan
//!   targets (`base | rand`) never show up as candidates. DNS-resolved
//!   C2s are recovered by parsing the DNS query message the sample
//!   embeds in its blob and tainting the answer register with the
//!   queried domain.
//!
//! Both passes are total and panic-free on malformed input: corrupt
//! records are skipped (and counted), out-of-range offsets ignored.

use std::net::Ipv4Addr;

use malnet_botgen::botvm::{Op, SockKind, RECORD_SIZE};
use malnet_botgen::stub::CONFIG_MAGIC;
use malnet_mips::elf::ElfFile;

/// Transport protocol of a candidate endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Proto {
    /// TCP connect.
    Tcp,
    /// UDP datagram.
    Udp,
    /// Raw socket (crafted floods).
    Raw,
}

impl Proto {
    /// Lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Proto::Tcp => "tcp",
            Proto::Udp => "udp",
            Proto::Raw => "raw",
        }
    }
}

/// What the sample uses the endpoint *for* (statically inferred).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// C2 check-in (TCP connect, or DNS-resolved connect).
    C2,
    /// Hardcoded DNS resolver (port-53 datagrams).
    Resolver,
    /// P2P bootstrap peer (non-53 datagrams to a fixed address).
    Peer,
}

impl Role {
    /// Lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::C2 => "c2",
            Role::Resolver => "resolver",
            Role::Peer => "peer",
        }
    }
}

/// Where the candidate was recovered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Source {
    /// MNBC bytecode constant propagation.
    Bytecode,
    /// Printable-string sweep.
    Rodata,
}

impl Source {
    /// Lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Source::Bytecode => "bytecode",
            Source::Rodata => "rodata",
        }
    }
}

/// One statically recovered endpoint candidate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Endpoint {
    /// Dotted-quad IP or domain name — same convention as the dynamic
    /// pipeline's D-C2s keys.
    pub addr: String,
    /// Destination port.
    pub port: u16,
    /// Transport.
    pub proto: Proto,
    /// Inferred role.
    pub role: Role,
    /// True when `addr` is a domain (DNS-resolved at runtime).
    pub dns: bool,
    /// Recovery source.
    pub source: Source,
}

/// Result of the printable-string sweep.
#[derive(Debug, Clone, Default)]
pub struct RodataScan {
    /// Printable runs found (length ≥ 4).
    pub strings: usize,
    /// Distinct dotted-quad IPv4 literals, sorted.
    pub ipv4: Vec<String>,
    /// Distinct domain-shaped tokens, sorted.
    pub domains: Vec<String>,
}

/// Sweep all non-executable segments for strings, IPv4 literals and
/// domain tokens.
pub fn scan_rodata(elf: &ElfFile) -> RodataScan {
    let mut out = RodataScan::default();
    let mut ipv4 = std::collections::BTreeSet::new();
    let mut domains = std::collections::BTreeSet::new();
    for seg in elf.segments.iter().filter(|s| !s.executable) {
        let mut run = Vec::new();
        for &b in seg.data.iter().chain(std::iter::once(&0u8)) {
            if (0x20..0x7f).contains(&b) {
                run.push(b);
                continue;
            }
            if run.len() >= 4 {
                out.strings += 1;
                let s = String::from_utf8_lossy(&run).to_string();
                for ip in find_ipv4_literals(&s) {
                    ipv4.insert(ip);
                }
                for d in find_domains(&s) {
                    domains.insert(d);
                }
            }
            run.clear();
        }
    }
    out.ipv4 = ipv4.into_iter().collect();
    out.domains = domains.into_iter().collect();
    out
}

/// Dotted-quad IPv4 literals inside a string (e.g. in an embedded
/// `http://10.1.0.5/bins/mips` downloader URL).
fn find_ipv4_literals(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    for token in s.split(|c: char| !(c.is_ascii_digit() || c == '.')) {
        let parts: Vec<&str> = token.split('.').collect();
        if parts.len() != 4 {
            continue;
        }
        let ok = parts.iter().all(|p| {
            !p.is_empty() && p.len() <= 3 && p.parse::<u32>().map(|v| v <= 255).unwrap_or(false)
        });
        if ok {
            out.push(token.to_string());
        }
    }
    out
}

/// Domain-shaped tokens: ≥ 2 dot-separated labels, alphabetic TLD.
fn find_domains(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    for token in s.split(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '-')) {
        let t = token.trim_matches('.');
        if t.len() < 4 || !t.contains('.') {
            continue;
        }
        let labels: Vec<&str> = t.split('.').collect();
        if labels.len() < 2 {
            continue;
        }
        let shape_ok = labels
            .iter()
            .all(|l| !l.is_empty() && l.len() <= 63 && !l.starts_with('-') && !l.ends_with('-'));
        let tld = labels.last().expect("non-empty split");
        let tld_ok = tld.len() >= 2 && tld.chars().all(|c| c.is_ascii_alphabetic());
        if shape_ok && tld_ok {
            out.push(t.to_ascii_lowercase());
        }
    }
    out
}

/// Result of the MNBC bytecode walk.
#[derive(Debug, Clone, Default)]
pub struct BytecodeScan {
    /// Was an MNBC config header found in any read-only segment?
    pub found: bool,
    /// Records decoded.
    pub records: usize,
    /// Records that failed to decode (corrupted samples).
    pub skipped: usize,
    /// Endpoints recovered by constant propagation.
    pub endpoints: Vec<Endpoint>,
}

/// Locate the MNBC config in a read-only segment and constant-propagate
/// through its bytecode.
pub fn scan_bytecode(elf: &ElfFile) -> BytecodeScan {
    for seg in elf
        .segments
        .iter()
        .filter(|s| !s.executable && !s.writable && !s.data.is_empty())
    {
        if let Some(scan) = scan_config(&seg.data) {
            return scan;
        }
    }
    BytecodeScan::default()
}

/// Abstract value of one VM register during the walk.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Val {
    /// Known 32-bit constant.
    Const(u32),
    /// Tainted by the DNS answer for this domain.
    Dns(String),
    /// File descriptor of this socket kind.
    Sock(SockKind),
    /// Anything else (random, network reads, parsed input).
    Unknown,
}

const NUM_VREGS: usize = 16;

fn scan_config(d: &[u8]) -> Option<BytecodeScan> {
    if d.len() < 20 || d[0..4] != CONFIG_MAGIC[..] {
        return None;
    }
    let u32_at = |i: usize| u32::from_be_bytes([d[i], d[i + 1], d[i + 2], d[i + 3]]) as usize;
    let (bc_off, bc_len) = (u32_at(4), u32_at(8));
    let (blob_off, blob_len) = (u32_at(12), u32_at(16));
    let mut out = BytecodeScan {
        found: true,
        ..BytecodeScan::default()
    };
    let Some(bytecode) = bc_off
        .checked_add(bc_len)
        .and_then(|end| d.get(bc_off..end))
    else {
        return Some(out);
    };
    let blob = blob_off
        .checked_add(blob_len)
        .and_then(|end| d.get(blob_off..end))
        .unwrap_or(&[]);

    let mut regs: Vec<Val> = vec![Val::Unknown; NUM_VREGS];
    let g = |regs: &[Val], r: u32| regs[(r as usize) % NUM_VREGS].clone();
    // Domain queried by the most recent DNS lookup; consumed by the
    // next `Ldw` (the answer-extraction load in the resolve sequence).
    let mut pending_dns: Option<String> = None;

    for rec in bytecode.chunks(RECORD_SIZE) {
        let Some(op) = Op::decode(rec) else {
            out.skipped += 1;
            continue;
        };
        out.records += 1;
        let set = |regs: &mut Vec<Val>, r: u8, v: Val| {
            regs[(r as usize) % NUM_VREGS] = v;
        };
        match op {
            Op::Ldi { r, a } => set(&mut regs, r, Val::Const(a)),
            Op::Mov { r, x } => {
                let v = g(&regs, x.into());
                set(&mut regs, r, v);
            }
            Op::Add { r, x, y }
            | Op::Sub { r, x, y }
            | Op::Mul { r, x, y }
            | Op::And { r, x, y }
            | Op::Or { r, x, y }
            | Op::Mod { r, x, y } => {
                let v = match (g(&regs, x.into()), g(&regs, y.into())) {
                    (Val::Const(a), Val::Const(b)) => {
                        let c = match op {
                            Op::Add { .. } => a.wrapping_add(b),
                            Op::Sub { .. } => a.wrapping_sub(b),
                            Op::Mul { .. } => a.wrapping_mul(b),
                            Op::And { .. } => a & b,
                            Op::Or { .. } => a | b,
                            _ => {
                                if b == 0 {
                                    0
                                } else {
                                    a % b
                                }
                            }
                        };
                        Val::Const(c)
                    }
                    _ => Val::Unknown,
                };
                set(&mut regs, r, v);
            }
            Op::Addi { r, x, a } => {
                let v = match g(&regs, x.into()) {
                    Val::Const(c) => Val::Const(c.wrapping_add(a)),
                    _ => Val::Unknown,
                };
                set(&mut regs, r, v);
            }
            Op::Shr { r, x, a } | Op::Shl { r, x, a } => {
                let v = match g(&regs, x.into()) {
                    Val::Const(c) => Val::Const(if matches!(op, Op::Shr { .. }) {
                        c.wrapping_shr(a)
                    } else {
                        c.wrapping_shl(a)
                    }),
                    _ => Val::Unknown,
                };
                set(&mut regs, r, v);
            }
            Op::Rand { r }
            | Op::Recv { r, .. }
            | Op::RecvFrom { r, .. }
            | Op::Ldb { r, .. }
            | Op::ParseIp { r, .. }
            | Op::ParseNum { r, .. }
            | Op::Match { r, .. } => set(&mut regs, r, Val::Unknown),
            Op::Ldw { r, .. } => {
                let v = match pending_dns.take() {
                    Some(d) => Val::Dns(d),
                    None => Val::Unknown,
                };
                set(&mut regs, r, v);
            }
            Op::Socket { r, kind } => set(&mut regs, r, Val::Sock(kind)),
            Op::Connect { r, x, y, a, b } => {
                let port = match a {
                    0 => match g(&regs, b) {
                        Val::Const(p) => Some((p & 0xffff) as u16),
                        _ => None,
                    },
                    p => Some((p & 0xffff) as u16),
                };
                let proto = sock_proto(&g(&regs, x.into())).unwrap_or(Proto::Tcp);
                if let Some(port) = port {
                    push_endpoint(&mut out.endpoints, g(&regs, y.into()), port, proto, None);
                }
                set(&mut regs, r, Val::Unknown); // connect result
            }
            Op::SendTo { x, y, r, a, b, c } => {
                let port = match a {
                    0 => match g(&regs, r.into()) {
                        Val::Const(p) => Some((p & 0xffff) as u16),
                        _ => None,
                    },
                    p => Some((p & 0xffff) as u16),
                };
                let proto = sock_proto(&g(&regs, x.into())).unwrap_or(Proto::Udp);
                if port == Some(53) {
                    // A DNS lookup: recover the queried name from the
                    // query message embedded in the blob.
                    if let Some(domain) = parse_dns_query_name(blob, b as usize, c as usize) {
                        pending_dns = Some(domain);
                    }
                }
                if let Some(port) = port {
                    push_endpoint(&mut out.endpoints, g(&regs, y.into()), port, proto, None);
                }
            }
            Op::SendToR { y, r, .. } => {
                if let (Val::Const(p), ip) = (g(&regs, r.into()), g(&regs, y.into())) {
                    push_endpoint(
                        &mut out.endpoints,
                        ip,
                        (p & 0xffff) as u16,
                        Proto::Udp,
                        None,
                    );
                }
            }
            // No register effects we track.
            Op::End
            | Op::Jmp { .. }
            | Op::Jeq { .. }
            | Op::Jne { .. }
            | Op::Jlt { .. }
            | Op::SleepMs { .. }
            | Op::SleepR { .. }
            | Op::Send { .. }
            | Op::SendR { .. }
            | Op::Close { .. }
            | Op::Abort { .. }
            | Op::Stb { .. }
            | Op::Cpy { .. }
            | Op::SkipSp { .. }
            | Op::RawSend { .. } => {}
        }
    }
    out.endpoints.sort();
    out.endpoints.dedup();
    Some(out)
}

fn sock_proto(v: &Val) -> Option<Proto> {
    match v {
        Val::Sock(SockKind::Tcp) => Some(Proto::Tcp),
        Val::Sock(SockKind::Udp) => Some(Proto::Udp),
        Val::Sock(_) => Some(Proto::Raw),
        _ => None,
    }
}

fn push_endpoint(out: &mut Vec<Endpoint>, ip: Val, port: u16, proto: Proto, role: Option<Role>) {
    let (addr, dns) = match ip {
        Val::Const(v) => (Ipv4Addr::from(v).to_string(), false),
        Val::Dns(d) => (d, true),
        _ => return, // unknowable destination (scan/flood targets)
    };
    let role = role.unwrap_or(if port == 53 { Role::Resolver } else { Role::C2 });
    // Non-53 datagrams to a fixed peer are P2P bootstrap, not C2
    // check-ins (the dynamic pipeline's C2 detector skips them too).
    let role = if role == Role::C2 && proto == Proto::Udp {
        Role::Peer
    } else {
        role
    };
    out.push(Endpoint {
        addr,
        port,
        proto,
        role,
        dns,
        source: Source::Bytecode,
    });
}

/// Parse the QNAME out of a DNS query message at `blob[off..off+len]`.
/// Strict enough to only match real query messages (flags `RD`, one
/// question, no answers).
fn parse_dns_query_name(blob: &[u8], off: usize, len: usize) -> Option<String> {
    let msg = off.checked_add(len).and_then(|end| blob.get(off..end))?;
    if msg.len() < 12 + 1 + 4 {
        return None;
    }
    let u16_at = |i: usize| u16::from_be_bytes([msg[i], msg[i + 1]]);
    if u16_at(2) != 0x0100 || u16_at(4) != 1 || u16_at(6) != 0 || u16_at(8) != 0 || u16_at(10) != 0
    {
        return None;
    }
    let mut labels: Vec<String> = Vec::new();
    let mut pos = 12usize;
    loop {
        let l = *msg.get(pos)? as usize;
        if l == 0 {
            break;
        }
        if l > 63 || labels.len() > 32 {
            return None;
        }
        let label = msg.get(pos + 1..pos + 1 + l)?;
        if !label
            .iter()
            .all(|&b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return None;
        }
        labels.push(String::from_utf8_lossy(label).to_ascii_lowercase());
        pos += 1 + l;
    }
    if labels.is_empty() {
        return None;
    }
    Some(labels.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_literal_extraction() {
        assert_eq!(
            find_ipv4_literals("GET http://10.1.0.5/bins/mips x 999.1.1.1 1.2.3"),
            vec!["10.1.0.5".to_string()]
        );
    }

    #[test]
    fn domain_extraction() {
        let ds = find_domains("wget cnc.Dark.example 1.2.3.4 ok -x- a.b");
        assert!(ds.contains(&"cnc.dark.example".to_string()));
        assert!(!ds.iter().any(|d| d == "1.2.3.4"));
    }

    #[test]
    fn dns_query_name_parses() {
        // Hand-build a query: id 0x4d4e, RD, 1 question: cnc.example A IN.
        let mut q = vec![0x4d, 0x4e, 0x01, 0x00, 0, 1, 0, 0, 0, 0, 0, 0];
        q.extend_from_slice(&[3]);
        q.extend_from_slice(b"cnc");
        q.extend_from_slice(&[7]);
        q.extend_from_slice(b"example");
        q.push(0);
        q.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(
            parse_dns_query_name(&q, 0, q.len()),
            Some("cnc.example".to_string())
        );
        // Out-of-range slices are None, not panics.
        assert_eq!(parse_dns_query_name(&q, usize::MAX, 4), None);
        assert_eq!(parse_dns_query_name(&q, 0, q.len() + 100), None);
    }

    #[test]
    fn corrupt_records_are_skipped_not_fatal() {
        use malnet_botgen::binary::{emit_elf, BotProgram};
        use malnet_botgen::botvm::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        b.op(Op::Ldi {
            r: 1,
            a: 0x01020304,
        })
        .op(Op::Socket {
            r: 0,
            kind: SockKind::Tcp,
        })
        .op(Op::Connect {
            r: 2,
            x: 0,
            y: 1,
            a: 23,
            b: 0,
        })
        .op(Op::End);
        let (bytecode, blob) = b.build();
        let mut program = BotProgram { bytecode, blob };
        // Corrupt the *second* record's opcode: the Ldi before it and
        // the Connect after it must still be recovered.
        program.bytecode[RECORD_SIZE] = 0xff;
        let elf_bytes = emit_elf(&program, b"");
        let elf = ElfFile::parse(&elf_bytes).unwrap();
        let scan = scan_bytecode(&elf);
        assert!(scan.found);
        assert_eq!(scan.skipped, 1);
        assert!(scan
            .endpoints
            .iter()
            .any(|e| e.addr == "1.2.3.4" && e.port == 23 && e.role == Role::C2));
    }
}
