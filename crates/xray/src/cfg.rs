//! `.text` analysis: linear sweep + recursive descent CFG, syscall
//! reachability, and immediate-materialization idioms.
//!
//! Built entirely on `malnet-mips`'s structured decoder
//! ([`malnet_mips::dis::decode`]). Two passes:
//!
//! 1. **Linear sweep** decodes every word (counting the ones the
//!    decoder cannot name) and collects basic-block leaders: the entry
//!    point, every branch/jump target, and the word after each control
//!    transfer's delay slot.
//! 2. **Recursive descent** walks the block graph from the entry point.
//!    Within each reachable block a small constant-propagation lattice
//!    tracks `lui`/`ori`/`addiu` materializations, so each `syscall`
//!    site's `$v0` is usually a known constant — that set of reachable
//!    syscall numbers is the triage verdict ("can this binary
//!    `socket`+`connect` at all?").
//!
//! The same store-tracking pass spots `decode_sockaddr`-shaped
//! constructions — `sh` of `AF_INET`-like halfwords at offset `o` and
//! `o+2` followed by `sw` of an address word at `o+4` off one base
//! register — the idiom every libc-less bot uses to build a
//! `struct sockaddr_in`.

use std::collections::{BTreeMap, BTreeSet};

use malnet_mips::dis::{decode_all, Flow, Inst};
use malnet_mips::sys;

/// Registers: $v0 carries the syscall number on MIPS o32.
const V0: u8 = 2;

/// Summary of the `.text` analysis, embedded in the static report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextAnalysis {
    /// Words decoded by the linear sweep.
    pub instructions: usize,
    /// Words the decoder could not name.
    pub unknown_words: usize,
    /// Basic blocks discovered.
    pub blocks: usize,
    /// CFG edges.
    pub edges: usize,
    /// Blocks reachable from the entry point.
    pub reachable_blocks: usize,
    /// Instructions inside reachable blocks.
    pub reachable_instructions: usize,
    /// Distinct syscall numbers reachable from entry with a constant
    /// `$v0`, ascending.
    pub syscalls: Vec<u32>,
    /// Reachable `syscall` sites whose `$v0` could not be resolved.
    pub unknown_syscall_sites: usize,
    /// 32-bit constants materialized via `lui`/`ori` pairs in reachable
    /// blocks.
    pub materialized_consts: usize,
    /// `sockaddr_in`-shaped store sequences in reachable blocks.
    pub sockaddr_sites: usize,
}

impl TextAnalysis {
    /// Can this binary open a socket *and* reach out (connect or
    /// sendto) — the static "is it networked malware at all" bit.
    pub fn net_capable(&self) -> bool {
        let has = |nr: u32| self.syscalls.binary_search(&nr).is_ok();
        has(sys::NR_SOCKET) && (has(sys::NR_CONNECT) || has(sys::NR_SENDTO))
    }
}

/// Analyze an executable segment's bytes loaded at `base`, with the
/// ELF entry point `entry`. Total on arbitrary bytes.
pub fn analyze_text(code: &[u8], base: u32, entry: u32) -> TextAnalysis {
    let insts: Vec<Inst> = decode_all(code, base);
    let n = insts.len();
    let end = base.wrapping_add(4 * n as u32);
    let in_range = |a: u32| a >= base && a < end && a.is_multiple_of(4);
    let mut out = TextAnalysis {
        instructions: n,
        unknown_words: insts.iter().filter(|i| !i.known).count(),
        ..TextAnalysis::default()
    };
    if n == 0 {
        return out;
    }

    // --- pass 1: leaders ---
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    leaders.insert(if in_range(entry) { entry } else { base });
    for i in &insts {
        match i.flow {
            Flow::Branch(t) | Flow::Jump(t) | Flow::Call(t) => {
                if in_range(t) {
                    leaders.insert(t);
                }
                let after = i.pc.wrapping_add(8); // skip the delay slot
                if in_range(after) {
                    leaders.insert(after);
                }
            }
            Flow::JumpReg | Flow::CallReg | Flow::Break => {
                let after = i.pc.wrapping_add(8);
                if in_range(after) {
                    leaders.insert(after);
                }
            }
            Flow::Syscall | Flow::Normal => {}
        }
    }
    leaders.insert(base);

    // --- block table: leader → (start index, len) ---
    let starts: Vec<u32> = leaders.iter().copied().collect();
    let mut blocks: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
    for (k, &s) in starts.iter().enumerate() {
        let limit = starts.get(k + 1).copied().unwrap_or(end);
        let idx = ((s - base) / 4) as usize;
        let len = ((limit - s) / 4) as usize;
        if len > 0 {
            blocks.insert(s, (idx, len));
        }
    }
    out.blocks = blocks.len();

    // --- successors per block ---
    let succs_of = |start: u32| -> Vec<u32> {
        let &(idx, len) = blocks.get(&start).expect("known block");
        let block_end = start + 4 * len as u32;
        // With leaders at `transfer + 8`, any control transfer sits at
        // the block's last or second-to-last slot (delay slot after it).
        for i in insts[idx..idx + len].iter().rev().take(2) {
            match i.flow {
                Flow::Branch(t) => {
                    let mut s = vec![];
                    if in_range(t) {
                        s.push(t);
                    }
                    if in_range(block_end) {
                        s.push(block_end);
                    }
                    return s;
                }
                Flow::Jump(t) => return if in_range(t) { vec![t] } else { vec![] },
                Flow::Call(t) => {
                    // Conservative: descend into the callee and across
                    // the conventional return point.
                    let mut s = vec![];
                    if in_range(t) {
                        s.push(t);
                    }
                    if in_range(block_end) {
                        s.push(block_end);
                    }
                    return s;
                }
                Flow::JumpReg | Flow::Break => return vec![],
                Flow::CallReg => {
                    return if in_range(block_end) {
                        vec![block_end]
                    } else {
                        vec![]
                    }
                }
                Flow::Syscall | Flow::Normal => {}
            }
        }
        if in_range(block_end) {
            vec![block_end]
        } else {
            vec![]
        }
    };

    // --- pass 2: recursive descent from entry ---
    let entry_block = if in_range(entry) && blocks.contains_key(&entry) {
        entry
    } else {
        base
    };
    let mut reachable: BTreeSet<u32> = BTreeSet::new();
    let mut work = vec![entry_block];
    while let Some(b) = work.pop() {
        if !blocks.contains_key(&b) || !reachable.insert(b) {
            continue;
        }
        for s in succs_of(b) {
            // Snap successors that land mid-block to their block start.
            let snapped = blocks.range(..=s).next_back().map(|(k, _)| *k).unwrap_or(s);
            work.push(snapped);
        }
    }
    out.edges = blocks.keys().map(|&b| succs_of(b).len()).sum();
    out.reachable_blocks = reachable.len();

    // --- per-block constant propagation over reachable blocks ---
    let mut syscalls: BTreeSet<u32> = BTreeSet::new();
    for &b in &reachable {
        let &(idx, len) = blocks.get(&b).expect("reachable block exists");
        out.reachable_instructions += len;
        let mut regs: [Option<u32>; 32] = [None; 32];
        regs[0] = Some(0);
        // (base reg, offset) of sh / sw stores seen in this block.
        let mut sh_stores: BTreeSet<(u8, i16)> = BTreeSet::new();
        let mut sw_stores: BTreeSet<(u8, i16)> = BTreeSet::new();
        for i in &insts[idx..idx + len] {
            step_const(
                i,
                &mut regs,
                &mut out.materialized_consts,
                &mut sh_stores,
                &mut sw_stores,
            );
            if i.flow == Flow::Syscall {
                match regs[V0 as usize] {
                    Some(nr) => {
                        syscalls.insert(nr);
                    }
                    None => out.unknown_syscall_sites += 1,
                }
            }
        }
        for &(breg, off) in &sh_stores {
            if sh_stores.contains(&(breg, off.wrapping_add(2)))
                && sw_stores.contains(&(breg, off.wrapping_add(4)))
            {
                out.sockaddr_sites += 1;
            }
        }
    }
    out.syscalls = syscalls.into_iter().collect();
    out
}

/// One step of the block-local constant lattice: track everything the
/// stub's codegen can materialize (`lui`/`ori` pairs, `addiu`, moves,
/// simple ALU on known values); anything loaded from memory or derived
/// from an unknown goes back to ⊥.
fn step_const(
    i: &Inst,
    regs: &mut [Option<u32>; 32],
    materialized: &mut usize,
    sh_stores: &mut BTreeSet<(u8, i16)>,
    sw_stores: &mut BTreeSet<(u8, i16)>,
) {
    if !i.known {
        return;
    }
    let (rs, rt, rd) = (i.rs() as usize, i.rt() as usize, i.rd() as usize);
    let set = |regs: &mut [Option<u32>; 32], r: usize, v: Option<u32>| {
        if r != 0 {
            regs[r] = v;
        }
    };
    match i.op() {
        0 => {
            let (a, b) = (regs[rs], regs[rt]);
            let bin = |f: fn(u32, u32) -> u32| a.zip(b).map(|(x, y)| f(x, y));
            match i.funct() {
                0x00 => set(regs, rd, regs[rt].map(|v| v << (i.shamt() & 31))),
                0x02 => set(regs, rd, regs[rt].map(|v| v >> (i.shamt() & 31))),
                0x04 => set(regs, rd, b.zip(a).map(|(v, s)| v << (s & 31))),
                0x06 => set(regs, rd, b.zip(a).map(|(v, s)| v >> (s & 31))),
                0x21 => set(regs, rd, bin(u32::wrapping_add)),
                0x23 => set(regs, rd, bin(u32::wrapping_sub)),
                0x24 => set(regs, rd, bin(|x, y| x & y)),
                0x25 => set(regs, rd, bin(|x, y| x | y)),
                0x26 => set(regs, rd, bin(|x, y| x ^ y)),
                0x27 => set(regs, rd, bin(|x, y| !(x | y))),
                0x2a => set(regs, rd, bin(|x, y| ((x as i32) < (y as i32)) as u32)),
                0x2b => set(regs, rd, bin(|x, y| (x < y) as u32)),
                // hi/lo, jalr link register, and everything else: unknown.
                0x10 | 0x12 => set(regs, rd, None),
                0x09 => set(regs, rd, None),
                _ => {}
            }
        }
        0x0f => set(regs, rt, Some(u32::from(i.imm()) << 16)),
        0x0d => {
            let v = regs[rs].map(|v| v | u32::from(i.imm()));
            // An `ori rt, rt, lo` completing a known upper half is the
            // `li`/`la` idiom — a materialized 32-bit constant.
            if rs == rt && v.is_some() {
                *materialized += 1;
            }
            set(regs, rt, v);
        }
        0x08 | 0x09 => set(
            regs,
            rt,
            regs[rs].map(|v| v.wrapping_add(i.simm() as i32 as u32)),
        ),
        0x0a => set(
            regs,
            rt,
            regs[rs].map(|v| ((v as i32) < i32::from(i.simm())) as u32),
        ),
        0x0b => set(
            regs,
            rt,
            regs[rs].map(|v| (v < i.simm() as i32 as u32) as u32),
        ),
        0x0c => set(regs, rt, regs[rs].map(|v| v & u32::from(i.imm()))),
        0x0e => set(regs, rt, regs[rs].map(|v| v ^ u32::from(i.imm()))),
        // Loads: destination becomes unknown.
        0x20 | 0x21 | 0x23 | 0x24 | 0x25 => set(regs, rt, None),
        0x29 => {
            sh_stores.insert((i.rs(), i.simm()));
        }
        0x2b => {
            sw_stores.insert((i.rs(), i.simm()));
        }
        0x03 => regs[31] = None, // jal clobbers $ra
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malnet_mips::asm::{Assembler, Ins, Reg};

    fn asm(f: impl FnOnce(&mut Assembler)) -> Vec<u8> {
        let mut a = Assembler::new(0x0040_0000);
        f(&mut a);
        a.assemble().unwrap()
    }

    #[test]
    fn straight_line_syscall_resolves_v0() {
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::V0, sys::NR_SOCKET))
                .ins(Ins::Syscall)
                .ins(Ins::Li(Reg::V0, sys::NR_CONNECT))
                .ins(Ins::Syscall)
                .ins(Ins::Li(Reg::V0, sys::NR_EXIT))
                .ins(Ins::Syscall);
        });
        let t = analyze_text(&code, 0x0040_0000, 0x0040_0000);
        assert_eq!(
            t.syscalls,
            vec![sys::NR_EXIT, sys::NR_SOCKET, sys::NR_CONNECT]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
        assert!(t.net_capable());
        assert_eq!(t.unknown_syscall_sites, 0);
        assert_eq!(t.blocks, 1);
    }

    #[test]
    fn unreachable_code_is_not_counted_as_reachable() {
        let code = asm(|a| {
            a.ins(Ins::J("end".into()))
                // dead: a sendto syscall that never runs
                .ins(Ins::Li(Reg::V0, sys::NR_SENDTO))
                .ins(Ins::Syscall)
                .label("end")
                .ins(Ins::Li(Reg::V0, sys::NR_EXIT))
                .ins(Ins::Syscall);
        });
        let t = analyze_text(&code, 0x0040_0000, 0x0040_0000);
        assert!(t.syscalls.contains(&sys::NR_EXIT));
        assert!(!t.syscalls.contains(&sys::NR_SENDTO));
        assert!(t.reachable_blocks < t.blocks);
    }

    #[test]
    fn branches_make_both_arms_reachable() {
        let code = asm(|a| {
            a.ins(Ins::Bne(Reg::A0, Reg::ZERO, "alt".into()))
                .ins(Ins::Li(Reg::V0, sys::NR_SEND))
                .ins(Ins::Syscall)
                .ins(Ins::J("out".into()))
                .label("alt")
                .ins(Ins::Li(Reg::V0, sys::NR_RECV))
                .ins(Ins::Syscall)
                .label("out")
                .ins(Ins::Li(Reg::V0, sys::NR_EXIT))
                .ins(Ins::Syscall);
        });
        let t = analyze_text(&code, 0x0040_0000, 0x0040_0000);
        assert!(t.syscalls.contains(&sys::NR_SEND));
        assert!(t.syscalls.contains(&sys::NR_RECV));
        assert_eq!(t.reachable_blocks, t.blocks);
        assert!(t.edges >= t.blocks);
    }

    #[test]
    fn sockaddr_idiom_detected() {
        let code = asm(|a| {
            a.ins(Ins::Li(Reg::S4, 0x2000_0000))
                .ins(Ins::Li(Reg::T9, sys::AF_INET))
                .ins(Ins::Sh(Reg::T9, Reg::S4, 0x1200))
                .ins(Ins::Sh(Reg::A1, Reg::S4, 0x1202))
                .ins(Ins::Sw(Reg::A2, Reg::S4, 0x1204));
        });
        let t = analyze_text(&code, 0x0040_0000, 0x0040_0000);
        assert_eq!(t.sockaddr_sites, 1);
        assert!(t.materialized_consts >= 2);
    }

    #[test]
    fn arbitrary_bytes_are_total() {
        let junk: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let t = analyze_text(&junk, 0x0040_0000, 0x0040_0000);
        assert_eq!(t.instructions, 1024);
        let _ = analyze_text(&[], 0x0040_0000, 0);
        let _ = analyze_text(&[1, 2, 3], 0, u32::MAX);
    }
}
