//! Structural ELF lints: the triage questions an analyst asks before
//! spending any emulation budget on a sample.
//!
//! All checks run on the output of `malnet-mips`'s hardened
//! [`ElfFile::parse`], which is itself truncation-safe; nothing here can
//! panic on malformed bytes.

use malnet_mips::elf::{ElfFile, ElfSegment};

/// One structural finding. `code` is stable and machine-matchable;
/// `message` is for humans.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Lint {
    /// Stable finding code (e.g. `elf.no_text`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl Lint {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        Lint {
            code,
            message: message.into(),
        }
    }
}

/// Parse and structurally validate ELF bytes.
///
/// Returns the parsed file (when parseable at all) together with every
/// lint raised. A file that fails to parse yields `(None, [elf.parse])`.
pub fn lint_bytes(bytes: &[u8]) -> (Option<ElfFile>, Vec<Lint>) {
    let elf = match ElfFile::parse(bytes) {
        Ok(f) => f,
        Err(e) => return (None, vec![Lint::new("elf.parse", e.to_string())]),
    };
    let mut lints = Vec::new();
    let exec: Vec<&ElfSegment> = elf.segments.iter().filter(|s| s.executable).collect();
    if elf.segments.is_empty() {
        lints.push(Lint::new("elf.no_segments", "no PT_LOAD segments"));
    }
    if exec.is_empty() {
        lints.push(Lint::new("elf.no_text", "no executable segment"));
    }
    if !elf
        .segments
        .iter()
        .any(|s| s.executable && segment_contains(s, elf.entry))
    {
        lints.push(Lint::new(
            "elf.entry_outside_text",
            format!("entry {:#010x} not inside an executable segment", elf.entry),
        ));
    }
    for s in &exec {
        if s.data.len() % 4 != 0 {
            lints.push(Lint::new(
                "elf.text_align",
                format!(
                    "executable segment at {:#010x} is {} bytes (not word-aligned)",
                    s.vaddr,
                    s.data.len()
                ),
            ));
        }
        if s.writable {
            lints.push(Lint::new(
                "elf.wx",
                format!("segment at {:#010x} is writable+executable", s.vaddr),
            ));
        }
    }
    for s in &elf.segments {
        if (s.memsz as usize) < s.data.len() {
            lints.push(Lint::new(
                "elf.memsz",
                format!(
                    "segment at {:#010x}: memsz {} < filesz {}",
                    s.vaddr,
                    s.memsz,
                    s.data.len()
                ),
            ));
        }
    }
    // Overlapping vaddr ranges (by memsz) usually mean a corrupted or
    // deliberately confusing header.
    let mut spans: Vec<(u64, u64)> = elf
        .segments
        .iter()
        .map(|s| {
            let len = u64::from(s.memsz).max(s.data.len() as u64);
            (u64::from(s.vaddr), u64::from(s.vaddr) + len)
        })
        .collect();
    spans.sort_unstable();
    for w in spans.windows(2) {
        if w[1].0 < w[0].1 {
            lints.push(Lint::new(
                "elf.overlap",
                format!(
                    "segments overlap: [{:#x}, {:#x}) and [{:#x}, {:#x})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ),
            ));
        }
    }
    if !elf
        .segments
        .iter()
        .any(|s| !s.executable && !s.writable && !s.data.is_empty())
    {
        lints.push(Lint::new(
            "elf.no_rodata",
            "no read-only data segment (nothing to extract strings from)",
        ));
    }
    (Some(elf), lints)
}

fn segment_contains(s: &ElfSegment, addr: u32) -> bool {
    let len = (s.memsz as usize).max(s.data.len()) as u64;
    let a = u64::from(addr);
    a >= u64::from(s.vaddr) && a < u64::from(s.vaddr) + len
}

#[cfg(test)]
mod tests {
    use super::*;
    use malnet_mips::elf::ElfSegment;

    fn minimal() -> ElfFile {
        ElfFile {
            entry: 0x0040_0000,
            segments: vec![
                ElfSegment {
                    vaddr: 0x0040_0000,
                    data: vec![0; 8],
                    memsz: 8,
                    writable: false,
                    executable: true,
                    name: ".text",
                },
                ElfSegment {
                    vaddr: 0x1000_0000,
                    data: vec![b'x'; 8],
                    memsz: 8,
                    writable: false,
                    executable: false,
                    name: ".rodata",
                },
            ],
        }
    }

    #[test]
    fn clean_file_has_no_lints() {
        let (elf, lints) = lint_bytes(&minimal().write());
        assert!(elf.is_some());
        assert!(lints.is_empty(), "{lints:?}");
    }

    #[test]
    fn garbage_yields_parse_lint_only() {
        let (elf, lints) = lint_bytes(b"not an elf at all");
        assert!(elf.is_none());
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].code, "elf.parse");
    }

    #[test]
    fn entry_outside_text_flagged() {
        let mut f = minimal();
        f.entry = 0x1000_0004; // points into rodata
        let (_, lints) = lint_bytes(&f.write());
        assert!(lints.iter().any(|l| l.code == "elf.entry_outside_text"));
    }

    #[test]
    fn wx_and_misalignment_flagged() {
        let mut f = minimal();
        f.segments[0].writable = true;
        f.segments[0].data = vec![0; 6];
        f.segments[0].memsz = 6;
        let (_, lints) = lint_bytes(&f.write());
        assert!(lints.iter().any(|l| l.code == "elf.wx"));
        assert!(lints.iter().any(|l| l.code == "elf.text_align"));
    }

    #[test]
    fn overlap_flagged() {
        let mut f = minimal();
        f.segments[1].vaddr = 0x0040_0004; // collides with .text
        let (_, lints) = lint_bytes(&f.write());
        assert!(lints.iter().any(|l| l.code == "elf.overlap"));
    }
}
