//! # malnet-protocols — IoT botnet C2 application protocols
//!
//! The paper (§2.5a) builds application-layer profiles of three IoT C2
//! protocols — Mirai (binary), Gafgyt (text) and Daddyl33t (text) — from
//! source code and reverse engineering, and uses them to extract DDoS
//! commands from captured C2 traffic. This crate implements those
//! protocols **from both sides**:
//!
//! * **Encoders** drive the simulated botmasters (in `malnet-botgen`) and
//!   the bot binaries themselves — the command a C2 service sends is the
//!   same byte sequence a real controller would emit.
//! * **Decoders/profilers** ([`profiler`]) are MalNet's analysis
//!   instruments: they parse raw C2→bot payload bytes out of captures and
//!   recover [`attack::AttackCommand`]s.
//!
//! Tsunami's IRC dialect ([`tsunami`]) and Mozi's UDP DHT gossip
//! ([`mozi`]) are implemented for corpus realism: Tsunami bots join a
//! channel and idle; Mozi is P2P and gets filtered out of the C2 study
//! exactly as in the paper (§2.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod daddyl33t;
pub mod gafgyt;
pub mod mirai;
pub mod mozi;
pub mod profiler;
pub mod tsunami;

pub use attack::{AttackCommand, AttackMethod, TargetProtocol};
pub use profiler::{C2Profiler, Family};
