//! The Gafgyt (a.k.a. BASHLITE/Qbot-lineage) C2 protocol: line-oriented
//! text, IRC-flavoured but not IRC.
//!
//! * **Bot → C2 login**: a line like `BUILD GAFGYT <arch>`.
//! * **C2 → Bot keepalive**: `PING`, answered with `PONG`.
//! * **C2 → Bot attack commands** start with `!*`:
//!   `!* UDP <ip> <port> <secs> 32 0`, `!* STD <ip> <port> <secs>`,
//!   `!* VSE <ip> <port> <secs>`, `!* STOP`.

use std::net::Ipv4Addr;

use crate::attack::{AttackCommand, AttackMethod};

/// The login line a bot sends after connecting.
pub fn login_line(arch: &str) -> String {
    format!("BUILD GAFGYT {arch}\n")
}

/// The C2 keepalive and the bot's reply.
pub const PING: &str = "PING\n";
/// Bot's answer to [`PING`].
pub const PONG: &str = "PONG\n";

/// Encode an attack command as a `!*` line. Returns `None` for methods
/// Gafgyt does not implement.
pub fn encode_command(cmd: &AttackCommand) -> Option<String> {
    let line = match cmd.method {
        AttackMethod::UdpFlood => format!(
            "!* UDP {} {} {} 32 0\n",
            cmd.target, cmd.port, cmd.duration_secs
        ),
        AttackMethod::Std => format!("!* STD {} {} {}\n", cmd.target, cmd.port, cmd.duration_secs),
        AttackMethod::Vse => format!("!* VSE {} {} {}\n", cmd.target, cmd.port, cmd.duration_secs),
        _ => return None,
    };
    Some(line)
}

/// Parse one line; returns a command if it is a well-formed attack line.
pub fn decode_line(line: &str) -> Option<AttackCommand> {
    let line = line.trim();
    let rest = line.strip_prefix("!*")?.trim();
    let mut parts = rest.split_whitespace();
    let verb = parts.next()?;
    let method = match verb {
        "UDP" => AttackMethod::UdpFlood,
        "STD" => AttackMethod::Std,
        "VSE" => AttackMethod::Vse,
        _ => return None, // STOP, SCANNER ON, etc. are not attacks
    };
    let target: Ipv4Addr = parts.next()?.parse().ok()?;
    let port: u16 = parts.next()?.parse().ok()?;
    let duration_secs: u32 = parts.next()?.parse().ok()?;
    Some(AttackCommand {
        method,
        target,
        port,
        duration_secs,
    })
}

/// Extract every attack command from a C2→bot byte stream.
pub fn decode_stream(data: &[u8]) -> Vec<AttackCommand> {
    String::from_utf8_lossy(data)
        .lines()
        .filter_map(decode_line)
        .collect()
}

/// Does this bot→C2 payload look like a Gafgyt login? Used by the
/// pipeline's manual-verification step (§2.3).
pub fn is_login(data: &[u8]) -> bool {
    data.starts_with(b"BUILD GAFGYT")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(method: AttackMethod) -> AttackCommand {
        AttackCommand {
            method,
            target: Ipv4Addr::new(198, 51, 100, 7),
            port: 80,
            duration_secs: 300,
        }
    }

    #[test]
    fn roundtrip_gafgyt_methods() {
        for m in [AttackMethod::UdpFlood, AttackMethod::Std, AttackMethod::Vse] {
            let c = cmd(m);
            let line = encode_command(&c).unwrap();
            assert_eq!(decode_line(&line), Some(c), "{m}");
        }
    }

    #[test]
    fn udp_line_format_matches_family_style() {
        let line = encode_command(&cmd(AttackMethod::UdpFlood)).unwrap();
        assert_eq!(line, "!* UDP 198.51.100.7 80 300 32 0\n");
    }

    #[test]
    fn non_gafgyt_methods_refuse() {
        assert!(encode_command(&cmd(AttackMethod::SynFlood)).is_none());
        assert!(encode_command(&cmd(AttackMethod::Blacknurse)).is_none());
    }

    #[test]
    fn control_lines_are_not_attacks() {
        assert!(decode_line("!* STOP").is_none());
        assert!(decode_line("!* SCANNER ON").is_none());
        assert!(decode_line("PING").is_none());
        assert!(decode_line("").is_none());
    }

    #[test]
    fn malformed_fields_rejected() {
        assert!(decode_line("!* UDP not-an-ip 80 300").is_none());
        assert!(decode_line("!* UDP 1.2.3.4 99999 300").is_none());
        assert!(decode_line("!* UDP 1.2.3.4 80").is_none());
    }

    #[test]
    fn stream_extracts_multiple_commands() {
        let stream = b"PING\n!* UDP 1.2.3.4 80 60 32 0\nnoise\n!* STD 5.6.7.8 123 30\n";
        let cmds = decode_stream(stream);
        assert_eq!(cmds.len(), 2);
        assert_eq!(cmds[0].method, AttackMethod::UdpFlood);
        assert_eq!(cmds[1].method, AttackMethod::Std);
        assert_eq!(cmds[1].port, 123);
    }

    #[test]
    fn login_detection() {
        assert!(is_login(login_line("mips").as_bytes()));
        assert!(!is_login(b"NICK tsunami"));
    }
}
