//! The Mirai C2 protocol (binary), modelled on the leaked source.
//!
//! * **Bot → C2 handshake**: 4 bytes `00 00 00 01` (protocol version 1),
//!   optionally followed by a length-prefixed source identifier.
//! * **Keepalive**: both directions exchange a 2-byte length prefix of
//!   `0x0000` roughly every 60 s; the C2 echoes it.
//! * **C2 → Bot attack command**:
//!   `[u16 total_len] [u32 duration] [u8 vector] [u8 n_targets]
//!    { u32 ip, u8 prefix }* [u8 n_flags] { u8 key, u8 len, bytes }*`
//!   Vector ids follow the public source (0 = UDP "0" in the paper's
//!   wording, 1 = VSE, 3 = SYN, 5 = STOMP); we add 33 for the TLS flood
//!   variant observed in the wild. Flag key 7 carries the destination
//!   port as ASCII digits, as real Mirai does.

use std::net::Ipv4Addr;

use crate::attack::{AttackCommand, AttackMethod};

/// The 4-byte bot handshake.
pub const HANDSHAKE: [u8; 4] = [0, 0, 0, 1];

/// The 2-byte keepalive ping.
pub const KEEPALIVE: [u8; 2] = [0, 0];

/// Mirai attack vector ids.
pub mod vector {
    /// Generic UDP flood ("0" in the paper).
    pub const UDP: u8 = 0;
    /// Valve Source Engine query flood.
    pub const VSE: u8 = 1;
    /// DNS water-torture (not separately observed; folded into UDP:53).
    pub const DNS: u8 = 2;
    /// TCP SYN flood.
    pub const SYN: u8 = 3;
    /// STOMP application flood.
    pub const STOMP: u8 = 5;
    /// TLS exhaustion (variant extension).
    pub const TLS: u8 = 33;
}

fn method_to_vector(m: AttackMethod) -> Option<u8> {
    Some(match m {
        AttackMethod::UdpFlood => vector::UDP,
        AttackMethod::Vse => vector::VSE,
        AttackMethod::SynFlood => vector::SYN,
        AttackMethod::Stomp => vector::STOMP,
        AttackMethod::TlsFlood => vector::TLS,
        _ => return None,
    })
}

fn vector_to_method(v: u8) -> Option<AttackMethod> {
    Some(match v {
        vector::UDP | vector::DNS => AttackMethod::UdpFlood,
        vector::VSE => AttackMethod::Vse,
        vector::SYN => AttackMethod::SynFlood,
        vector::STOMP => AttackMethod::Stomp,
        vector::TLS => AttackMethod::TlsFlood,
        _ => return None,
    })
}

/// Encode an attack command as the C2 would send it.
/// Returns `None` for methods Mirai does not implement (STD, NFO,
/// BLACKNURSE belong to other families).
pub fn encode_command(cmd: &AttackCommand) -> Option<Vec<u8>> {
    let vec_id = method_to_vector(cmd.method)?;
    let mut body = Vec::with_capacity(32);
    body.extend_from_slice(&cmd.duration_secs.to_be_bytes());
    body.push(vec_id);
    body.push(1); // one target
    body.extend_from_slice(&u32::from(cmd.target).to_be_bytes());
    body.push(32); // /32 prefix
    let port_ascii = cmd.port.to_string().into_bytes();
    body.push(1); // one flag
    body.push(7); // key 7: destination port
    body.push(port_ascii.len() as u8);
    body.extend_from_slice(&port_ascii);
    let mut out = Vec::with_capacity(2 + body.len());
    out.extend_from_slice(&((body.len() as u16 + 2).to_be_bytes()));
    out.extend_from_slice(&body);
    Some(out)
}

/// Attempt to decode one attack command from the head of `buf`.
/// Returns the command and the bytes consumed, or `None` if `buf` does
/// not begin with a well-formed command (keepalives return `None`).
pub fn decode_command(buf: &[u8]) -> Option<(AttackCommand, usize)> {
    if buf.len() < 2 {
        return None;
    }
    let total = usize::from(u16::from_be_bytes([buf[0], buf[1]]));
    if total < 8 || total > buf.len() {
        return None;
    }
    let body = &buf[2..total];
    let duration = u32::from_be_bytes([body[0], body[1], body[2], body[3]]);
    let vec_id = body[4];
    let method = vector_to_method(vec_id)?;
    let n_targets = body[5];
    if n_targets == 0 {
        return None;
    }
    let mut pos = 6;
    let mut target = None;
    for _ in 0..n_targets {
        if pos + 5 > body.len() {
            return None;
        }
        let ip = Ipv4Addr::new(body[pos], body[pos + 1], body[pos + 2], body[pos + 3]);
        target.get_or_insert(ip);
        pos += 5;
    }
    let mut port = 0u16;
    if pos < body.len() {
        let n_flags = body[pos];
        pos += 1;
        for _ in 0..n_flags {
            if pos + 2 > body.len() {
                return None;
            }
            let key = body[pos];
            let len = usize::from(body[pos + 1]);
            pos += 2;
            if pos + len > body.len() {
                return None;
            }
            if key == 7 {
                port = std::str::from_utf8(&body[pos..pos + len])
                    .ok()?
                    .parse()
                    .ok()?;
            }
            pos += len;
        }
    }
    Some((
        AttackCommand {
            method,
            target: target?,
            port,
            duration_secs: duration,
        },
        total,
    ))
}

/// Is this payload the bot handshake?
pub fn is_handshake(buf: &[u8]) -> bool {
    buf.len() >= 4 && buf[..4] == HANDSHAKE
}

/// Is this payload a bare keepalive?
pub fn is_keepalive(buf: &[u8]) -> bool {
    buf == KEEPALIVE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(method: AttackMethod) -> AttackCommand {
        AttackCommand {
            method,
            target: Ipv4Addr::new(203, 0, 113, 9),
            port: 4567,
            duration_secs: 120,
        }
    }

    #[test]
    fn roundtrip_all_mirai_vectors() {
        for m in [
            AttackMethod::UdpFlood,
            AttackMethod::Vse,
            AttackMethod::SynFlood,
            AttackMethod::Stomp,
            AttackMethod::TlsFlood,
        ] {
            let c = cmd(m);
            let bytes = encode_command(&c).unwrap();
            let (d, used) = decode_command(&bytes).unwrap();
            assert_eq!(d, c, "{m}");
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn non_mirai_methods_refuse_encoding() {
        assert!(encode_command(&cmd(AttackMethod::Std)).is_none());
        assert!(encode_command(&cmd(AttackMethod::Nfo)).is_none());
        assert!(encode_command(&cmd(AttackMethod::Blacknurse)).is_none());
    }

    #[test]
    fn keepalive_and_handshake_not_commands() {
        assert!(decode_command(&KEEPALIVE).is_none());
        assert!(decode_command(&HANDSHAKE).is_none());
        assert!(is_handshake(&HANDSHAKE));
        assert!(is_keepalive(&KEEPALIVE));
        assert!(!is_keepalive(&HANDSHAKE));
    }

    #[test]
    fn truncated_command_rejected() {
        let bytes = encode_command(&cmd(AttackMethod::UdpFlood)).unwrap();
        for cut in 1..bytes.len() {
            assert!(
                decode_command(&bytes[..cut]).is_none(),
                "cut at {cut} must not parse"
            );
        }
    }

    #[test]
    fn garbage_rejected_without_panic() {
        for len in 0..64 {
            let garbage: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
            let _ = decode_command(&garbage);
        }
    }

    #[test]
    fn wire_layout_matches_spec() {
        let bytes = encode_command(&cmd(AttackMethod::SynFlood)).unwrap();
        let total = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
        assert_eq!(total, bytes.len());
        assert_eq!(&bytes[2..6], &120u32.to_be_bytes()); // duration
        assert_eq!(bytes[6], vector::SYN);
        assert_eq!(bytes[7], 1); // one target
        assert_eq!(&bytes[8..12], &[203, 0, 113, 9]);
        assert_eq!(bytes[12], 32); // /32
        assert_eq!(bytes[13], 1); // one flag
        assert_eq!(bytes[14], 7); // key 7 (dport)
        assert_eq!(&bytes[16..20], b"4567");
    }

    #[test]
    fn command_with_trailing_data_reports_consumed() {
        let mut bytes = encode_command(&cmd(AttackMethod::UdpFlood)).unwrap();
        let n = bytes.len();
        bytes.extend_from_slice(&KEEPALIVE);
        let (_, used) = decode_command(&bytes).unwrap();
        assert_eq!(used, n);
    }
}
