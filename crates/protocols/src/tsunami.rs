//! Tsunami (a.k.a. Kaiten): C2 over genuine IRC.
//!
//! The paper (Appendix C) notes Tsunami's "main distinction is its
//! communication over the IRC protocol". Our simulated Tsunami bots
//! register (`NICK`/`USER`), join a channel, answer `PING`, and idle;
//! the D-DDOS study tracks Mirai/Gafgyt/Daddyl33t, so Tsunami C2s in the
//! corpus chat but do not launch attacks — matching Figure 11, where no
//! Tsunami attacks appear.

/// Registration burst a bot sends after connecting.
pub fn register_lines(nick: &str) -> String {
    format!("NICK {nick}\r\nUSER {nick} 8 * :{nick}\r\n")
}

/// Channel join.
pub fn join_line(channel: &str) -> String {
    format!("JOIN {channel}\r\n")
}

/// Server keepalive.
pub fn ping_line(token: &str) -> String {
    format!("PING :{token}\r\n")
}

/// Bot's answer to a `PING`.
pub fn pong_for(line: &str) -> Option<String> {
    let rest = line.trim().strip_prefix("PING")?.trim();
    let token = rest.strip_prefix(':').unwrap_or(rest);
    Some(format!("PONG :{token}\r\n"))
}

/// Server's welcome numerics after registration.
pub fn welcome_lines(nick: &str) -> String {
    format!(":irc 001 {nick} :Welcome to the botnet\r\n")
}

/// Does a bot→C2 payload look like IRC registration? (Manual-verification
/// helper; the paper compares captured traffic against known protocols.)
pub fn is_registration(data: &[u8]) -> bool {
    data.starts_with(b"NICK ") || data.starts_with(b"USER ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_roundtrip() {
        let lines = register_lines("mipsbot42");
        assert!(lines.starts_with("NICK mipsbot42\r\n"));
        assert!(lines.contains("USER mipsbot42"));
        assert!(is_registration(lines.as_bytes()));
    }

    #[test]
    fn pong_echoes_token() {
        assert_eq!(
            pong_for("PING :abc123").as_deref(),
            Some("PONG :abc123\r\n")
        );
        assert_eq!(pong_for("PING xyz").as_deref(), Some("PONG :xyz\r\n"));
        assert!(pong_for("PRIVMSG #c :hi").is_none());
    }

    #[test]
    fn join_and_welcome_format() {
        assert_eq!(join_line("#iot"), "JOIN #iot\r\n");
        assert!(welcome_lines("bot").contains("001 bot"));
    }
}
