//! The C2 profiler: MalNet's instrument for reading DDoS commands out of
//! captured C2 traffic (paper §2.5a).
//!
//! Given the C2→bot byte stream of a session, the profiler extracts
//! [`AttackCommand`]s using the per-family protocol profiles. It can also
//! *identify* the family from traffic shape alone, which the pipeline's
//! manual-verification step uses (§2.3: "compares the captured traffic
//! with Mirai, Gafgyt, Tsunami and Daddyl33t network protocols").

use std::fmt;

use crate::attack::AttackCommand;
use crate::{daddyl33t, gafgyt, mirai, tsunami};

/// The malware families of the study (Table 1; descriptions per the
/// paper's Appendix C, Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Exploits IoT devices and turns them into bots. First appeared in
    /// 2016 and is associated with the Dyn and OVH DDoS attacks. Its C2
    /// communication protocol is **binary**.
    Mirai,
    /// Infects Linux systems (especially BusyBox devices) to launch DDoS
    /// attacks; appeared in 2014 with many later variants. Distinguishing
    /// trait for this study: its **text-based** C2 protocol.
    Gafgyt,
    /// A Linux backdoor with download-and-execute capability; its
    /// distinction here is C2 communication over the **IRC** protocol.
    Tsunami,
    /// A QBot descendant targeting IoT devices; of interest for its
    /// distinct DDoS attacks against the ICMP protocol (BLACKNURSE) and
    /// gaming servers (NFO).
    Daddyl33t,
    /// An APT targeting routers and network devices, with persistence
    /// that survives reboots; modest network footprint.
    VpnFilter,
    /// An evolution of Mirai/Gafgyt using Hajime-style **peer-to-peer**
    /// communication; among the most prevalent Linux malware of 2021.
    Mozi,
    /// A P2P IoT malware that "secures" the device it infects while
    /// spreading further; no C2 server.
    Hajime,
}

impl Family {
    /// All families, in the paper's Table 1 order.
    pub const ALL: [Family; 7] = [
        Family::Mirai,
        Family::Gafgyt,
        Family::Tsunami,
        Family::Daddyl33t,
        Family::VpnFilter,
        Family::Mozi,
        Family::Hajime,
    ];

    /// Canonical lowercase label (AVClass-style).
    pub fn label(self) -> &'static str {
        match self {
            Family::Mirai => "mirai",
            Family::Gafgyt => "gafgyt",
            Family::Tsunami => "tsunami",
            Family::Daddyl33t => "daddyl33t",
            Family::VpnFilter => "vpnfilter",
            Family::Mozi => "mozi",
            Family::Hajime => "hajime",
        }
    }

    /// Is this family peer-to-peer (no C2 server)? P2P samples are
    /// filtered out when building D-C2s (§2.3).
    pub fn is_p2p(self) -> bool {
        matches!(self, Family::Mozi | Family::Hajime)
    }

    /// Does the DDoS study profile this family's protocol? (§2.5a: Mirai,
    /// Gafgyt, Daddyl33t.)
    pub fn has_ddos_profile(self) -> bool {
        matches!(self, Family::Mirai | Family::Gafgyt | Family::Daddyl33t)
    }

    /// Mirai's TLS flood rides TCP; Daddyl33t's rides UDP (paper §5.1).
    pub fn tls_over_tcp(self) -> bool {
        self == Family::Mirai
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The profiler over one C2 session's byte streams.
#[derive(Debug, Clone)]
pub struct C2Profiler {
    family: Family,
}

impl C2Profiler {
    /// A profiler for a known family.
    pub fn new(family: Family) -> Self {
        C2Profiler { family }
    }

    /// Extract attack commands from the C2→bot byte stream.
    /// Families without a DDoS profile yield nothing.
    pub fn extract_commands(&self, c2_to_bot: &[u8]) -> Vec<AttackCommand> {
        match self.family {
            Family::Mirai => {
                let mut out = Vec::new();
                let mut pos = 0;
                while pos < c2_to_bot.len() {
                    if let Some((cmd, used)) = mirai::decode_command(&c2_to_bot[pos..]) {
                        out.push(cmd);
                        pos += used;
                    } else if c2_to_bot[pos..].starts_with(&mirai::KEEPALIVE) {
                        pos += 2;
                    } else {
                        pos += 1; // resynchronise
                    }
                }
                out
            }
            Family::Gafgyt => gafgyt::decode_stream(c2_to_bot),
            Family::Daddyl33t => daddyl33t::decode_stream(c2_to_bot),
            _ => Vec::new(),
        }
    }

    /// The family this profiler expects.
    pub fn family(&self) -> Family {
        self.family
    }
}

/// Identify the family from the *bot→C2* opening bytes (login/handshake).
/// Returns `None` when nothing matches a known profile — the behavioural
/// heuristic (§2.5b) takes over in that case.
pub fn identify_family(bot_to_c2: &[u8]) -> Option<Family> {
    if mirai::is_handshake(bot_to_c2) {
        Some(Family::Mirai)
    } else if gafgyt::is_login(bot_to_c2) {
        Some(Family::Gafgyt)
    } else if daddyl33t::is_login(bot_to_c2) {
        Some(Family::Daddyl33t)
    } else if tsunami::is_registration(bot_to_c2) {
        Some(Family::Tsunami)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackMethod;
    use std::net::Ipv4Addr;

    fn cmd(method: AttackMethod, port: u16) -> AttackCommand {
        AttackCommand {
            method,
            target: Ipv4Addr::new(192, 0, 2, 200),
            port,
            duration_secs: 60,
        }
    }

    #[test]
    fn mirai_stream_with_keepalives_and_noise() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&mirai::KEEPALIVE);
        stream.extend_from_slice(&mirai::encode_command(&cmd(AttackMethod::UdpFlood, 80)).unwrap());
        stream.extend_from_slice(&mirai::KEEPALIVE);
        stream
            .extend_from_slice(&mirai::encode_command(&cmd(AttackMethod::SynFlood, 443)).unwrap());
        let cmds = C2Profiler::new(Family::Mirai).extract_commands(&stream);
        assert_eq!(cmds.len(), 2);
        assert_eq!(cmds[0].method, AttackMethod::UdpFlood);
        assert_eq!(cmds[1].method, AttackMethod::SynFlood);
    }

    #[test]
    fn gafgyt_and_daddy_streams() {
        let g = b"PING\n!* VSE 192.0.2.200 27015 60\n";
        let cmds = C2Profiler::new(Family::Gafgyt).extract_commands(g);
        assert_eq!(cmds, vec![cmd(AttackMethod::Vse, 27015)]);
        let d = b".nurse 192.0.2.200 60\n";
        let cmds = C2Profiler::new(Family::Daddyl33t).extract_commands(d);
        assert_eq!(cmds, vec![cmd(AttackMethod::Blacknurse, 0)]);
    }

    #[test]
    fn unprofiled_families_extract_nothing() {
        let stream = b"PRIVMSG #c :!udp 1.2.3.4 80 30\r\n";
        assert!(C2Profiler::new(Family::Tsunami)
            .extract_commands(stream)
            .is_empty());
        assert!(C2Profiler::new(Family::Mozi)
            .extract_commands(stream)
            .is_empty());
    }

    #[test]
    fn family_identification_from_login() {
        assert_eq!(identify_family(&mirai::HANDSHAKE), Some(Family::Mirai));
        assert_eq!(
            identify_family(crate::gafgyt::login_line("mips").as_bytes()),
            Some(Family::Gafgyt)
        );
        assert_eq!(
            identify_family(crate::daddyl33t::login_line(1).as_bytes()),
            Some(Family::Daddyl33t)
        );
        assert_eq!(
            identify_family(crate::tsunami::register_lines("x").as_bytes()),
            Some(Family::Tsunami)
        );
        assert_eq!(identify_family(b"GET / HTTP/1.0"), None);
    }

    #[test]
    fn family_properties_match_paper() {
        assert!(Family::Mozi.is_p2p());
        assert!(Family::Hajime.is_p2p());
        assert!(!Family::Mirai.is_p2p());
        assert!(Family::Mirai.has_ddos_profile());
        assert!(Family::Gafgyt.has_ddos_profile());
        assert!(Family::Daddyl33t.has_ddos_profile());
        assert!(!Family::Tsunami.has_ddos_profile());
        assert!(Family::Mirai.tls_over_tcp());
        assert!(!Family::Daddyl33t.tls_over_tcp());
    }

    #[test]
    fn mirai_resync_over_garbage() {
        let mut stream = vec![0xde, 0xad, 0x13];
        stream.extend_from_slice(&mirai::encode_command(&cmd(AttackMethod::Stomp, 61613)).unwrap());
        let cmds = C2Profiler::new(Family::Mirai).extract_commands(&stream);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].method, AttackMethod::Stomp);
    }
}
