//! The DDoS attack taxonomy observed in the paper (§5.1): eight attack
//! types across three malware families.

use std::fmt;
use std::net::Ipv4Addr;

/// The eight observed DDoS attack types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackMethod {
    /// Generic UDP flood (Mirai vector 0 "UDP Flood", Gafgyt `UDP`,
    /// Daddyl33t `UDPRAW`). Null-byte payload.
    UdpFlood,
    /// TCP SYN flood (Mirai vector 3, Daddyl33t `HYDRASYN`).
    SynFlood,
    /// TLS handshake exhaustion (Mirai over TCP; Daddyl33t sends encoded
    /// DTLS-ish datagrams to a UDP port).
    TlsFlood,
    /// BLACKNURSE: ICMP type-3 code-3 flood (Daddyl33t only).
    Blacknurse,
    /// STOMP application flood over TCP (completes the handshake, then
    /// junk STOMP frames).
    Stomp,
    /// Valve Source Engine query flood against game servers (Mirai vector
    /// 1; also seen once from Gafgyt).
    Vse,
    /// STD: repeated random-string UDP flood (Gafgyt).
    Std,
    /// NFO: custom UDP payload aimed at NFOservers infrastructure
    /// (Daddyl33t, `NFOV6`).
    Nfo,
}

impl AttackMethod {
    /// All methods, for iteration in reports.
    pub const ALL: [AttackMethod; 8] = [
        AttackMethod::UdpFlood,
        AttackMethod::SynFlood,
        AttackMethod::TlsFlood,
        AttackMethod::Blacknurse,
        AttackMethod::Stomp,
        AttackMethod::Vse,
        AttackMethod::Std,
        AttackMethod::Nfo,
    ];

    /// Short display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            AttackMethod::UdpFlood => "UDP Flood",
            AttackMethod::SynFlood => "SYN Flood",
            AttackMethod::TlsFlood => "TLS",
            AttackMethod::Blacknurse => "BLACKNURSE",
            AttackMethod::Stomp => "STOMP",
            AttackMethod::Vse => "VSE",
            AttackMethod::Std => "STD",
            AttackMethod::Nfo => "NFO",
        }
    }
}

impl fmt::Display for AttackMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The protocol the attack traffic lands on (the paper's Figure 10
/// categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TargetProtocol {
    /// UDP, excluding DNS.
    Udp,
    /// TCP.
    Tcp,
    /// DNS (UDP port 53).
    Dns,
    /// ICMP.
    Icmp,
}

impl fmt::Display for TargetProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TargetProtocol::Udp => "UDP",
            TargetProtocol::Tcp => "TCP",
            TargetProtocol::Dns => "DNS",
            TargetProtocol::Icmp => "ICMP",
        })
    }
}

/// A parsed DDoS command: what the C2 asked a bot to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttackCommand {
    /// Attack type.
    pub method: AttackMethod,
    /// Victim address.
    pub target: Ipv4Addr,
    /// Victim port (0 where the attack has no port, e.g. BLACKNURSE).
    pub port: u16,
    /// Attack duration in seconds.
    pub duration_secs: u32,
}

impl AttackCommand {
    /// Classify the attack's target protocol (Figure 10 logic): SYN/STOMP
    /// ride TCP, BLACKNURSE is ICMP, UDP-carried floods aimed at port 53
    /// count as DNS, everything else is UDP. Mirai's TLS flood is
    /// TCP-carried; Daddyl33t's targets a UDP port — we classify by the
    /// wire protocol the family uses, passed as `tls_over_tcp`.
    pub fn target_protocol(&self, tls_over_tcp: bool) -> TargetProtocol {
        match self.method {
            AttackMethod::SynFlood | AttackMethod::Stomp => TargetProtocol::Tcp,
            AttackMethod::Blacknurse => TargetProtocol::Icmp,
            AttackMethod::TlsFlood if tls_over_tcp => TargetProtocol::Tcp,
            _ if self.port == 53 => TargetProtocol::Dns,
            _ => TargetProtocol::Udp,
        }
    }
}

impl fmt::Display for AttackCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {}:{} for {}s",
            self.method, self.target, self.port, self.duration_secs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(method: AttackMethod, port: u16) -> AttackCommand {
        AttackCommand {
            method,
            target: Ipv4Addr::new(192, 0, 2, 1),
            port,
            duration_secs: 60,
        }
    }

    #[test]
    fn protocol_classification() {
        assert_eq!(
            cmd(AttackMethod::SynFlood, 80).target_protocol(true),
            TargetProtocol::Tcp
        );
        assert_eq!(
            cmd(AttackMethod::Stomp, 61613).target_protocol(true),
            TargetProtocol::Tcp
        );
        assert_eq!(
            cmd(AttackMethod::Blacknurse, 0).target_protocol(true),
            TargetProtocol::Icmp
        );
        assert_eq!(
            cmd(AttackMethod::UdpFlood, 53).target_protocol(true),
            TargetProtocol::Dns
        );
        assert_eq!(
            cmd(AttackMethod::UdpFlood, 80).target_protocol(true),
            TargetProtocol::Udp
        );
        // Mirai TLS rides TCP; Daddyl33t's rides UDP.
        assert_eq!(
            cmd(AttackMethod::TlsFlood, 443).target_protocol(true),
            TargetProtocol::Tcp
        );
        assert_eq!(
            cmd(AttackMethod::TlsFlood, 443).target_protocol(false),
            TargetProtocol::Udp
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AttackMethod::Vse.to_string(), "VSE");
        assert_eq!(AttackMethod::Blacknurse.name(), "BLACKNURSE");
        assert_eq!(AttackMethod::ALL.len(), 8);
    }

    #[test]
    fn display_includes_endpoint() {
        let c = cmd(AttackMethod::UdpFlood, 80);
        assert_eq!(c.to_string(), "UDP Flood -> 192.0.2.1:80 for 60s");
    }
}
