//! The Daddyl33t C2 protocol: text, dot-prefixed commands.
//!
//! The paper reverse-engineered this family's traffic (§2.5a). It is a
//! QBot descendant targeting IoT devices; its distinguishing attacks are
//! HYDRASYN, the UDP-carried TLS flood, BLACKNURSE (ICMP) and NFOV6.
//!
//! * **Bot → C2 login**: `l33t <id>`.
//! * **Keepalive**: C2 sends `.ping`, bot replies `.pong`.
//! * **Attack commands**:
//!   `.udpraw <ip> <port> <secs>`, `.hydrasyn <ip> <port> <secs>`,
//!   `.tls <ip> <port> <secs>`, `.nurse <ip> <secs>`,
//!   `.nfov6 <ip> <secs>` (always UDP port 238), `.stop`.

use std::net::Ipv4Addr;

use crate::attack::{AttackCommand, AttackMethod};

/// The UDP port the NFO attack always targets (per the paper §5.1).
pub const NFO_PORT: u16 = 238;

/// Bot login line.
pub fn login_line(id: u32) -> String {
    format!("l33t {id:08x}\n")
}

/// Keepalive from the C2.
pub const PING: &str = ".ping\n";
/// Bot's keepalive response.
pub const PONG: &str = ".pong\n";

/// Encode a command; `None` for methods Daddyl33t lacks.
pub fn encode_command(cmd: &AttackCommand) -> Option<String> {
    let line = match cmd.method {
        AttackMethod::UdpFlood => {
            format!(
                ".udpraw {} {} {}\n",
                cmd.target, cmd.port, cmd.duration_secs
            )
        }
        AttackMethod::SynFlood => format!(
            ".hydrasyn {} {} {}\n",
            cmd.target, cmd.port, cmd.duration_secs
        ),
        AttackMethod::TlsFlood => {
            format!(".tls {} {} {}\n", cmd.target, cmd.port, cmd.duration_secs)
        }
        AttackMethod::Blacknurse => format!(".nurse {} {}\n", cmd.target, cmd.duration_secs),
        AttackMethod::Nfo => format!(".nfov6 {} {}\n", cmd.target, cmd.duration_secs),
        _ => return None,
    };
    Some(line)
}

/// Parse one line into an attack command.
pub fn decode_line(line: &str) -> Option<AttackCommand> {
    let line = line.trim();
    let mut parts = line.split_whitespace();
    let verb = parts.next()?;
    let (method, has_port, fixed_port) = match verb {
        ".udpraw" => (AttackMethod::UdpFlood, true, 0),
        ".hydrasyn" => (AttackMethod::SynFlood, true, 0),
        ".tls" => (AttackMethod::TlsFlood, true, 0),
        ".nurse" => (AttackMethod::Blacknurse, false, 0),
        ".nfov6" => (AttackMethod::Nfo, false, NFO_PORT),
        _ => return None,
    };
    let target: Ipv4Addr = parts.next()?.parse().ok()?;
    let port = if has_port {
        parts.next()?.parse().ok()?
    } else {
        fixed_port
    };
    let duration_secs: u32 = parts.next()?.parse().ok()?;
    Some(AttackCommand {
        method,
        target,
        port,
        duration_secs,
    })
}

/// Extract every attack command from a C2→bot byte stream.
pub fn decode_stream(data: &[u8]) -> Vec<AttackCommand> {
    String::from_utf8_lossy(data)
        .lines()
        .filter_map(decode_line)
        .collect()
}

/// Does this bot→C2 payload look like a Daddyl33t login?
pub fn is_login(data: &[u8]) -> bool {
    data.starts_with(b"l33t ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(method: AttackMethod, port: u16) -> AttackCommand {
        AttackCommand {
            method,
            target: Ipv4Addr::new(172, 20, 3, 77),
            port,
            duration_secs: 45,
        }
    }

    #[test]
    fn roundtrip_daddyl33t_methods() {
        for (m, port) in [
            (AttackMethod::UdpFlood, 4567),
            (AttackMethod::SynFlood, 80),
            (AttackMethod::TlsFlood, 443),
        ] {
            let c = cmd(m, port);
            let line = encode_command(&c).unwrap();
            assert_eq!(decode_line(&line), Some(c), "{m}");
        }
    }

    #[test]
    fn nurse_has_no_port() {
        let c = cmd(AttackMethod::Blacknurse, 0);
        let line = encode_command(&c).unwrap();
        assert_eq!(line, ".nurse 172.20.3.77 45\n");
        assert_eq!(decode_line(&line), Some(c));
    }

    #[test]
    fn nfo_pins_port_238() {
        let c = cmd(AttackMethod::Nfo, NFO_PORT);
        let line = encode_command(&c).unwrap();
        let d = decode_line(&line).unwrap();
        assert_eq!(d.port, 238);
    }

    #[test]
    fn gafgyt_methods_refused() {
        assert!(encode_command(&cmd(AttackMethod::Std, 1)).is_none());
        assert!(encode_command(&cmd(AttackMethod::Vse, 1)).is_none());
    }

    #[test]
    fn stream_parse_skips_keepalives() {
        let stream = b".ping\n.hydrasyn 10.0.0.1 80 30\n.stop\n.tls 10.0.0.2 443 60\n";
        let cmds = decode_stream(stream);
        assert_eq!(cmds.len(), 2);
        assert_eq!(cmds[0].method, AttackMethod::SynFlood);
        assert_eq!(cmds[1].method, AttackMethod::TlsFlood);
    }

    #[test]
    fn login_detection() {
        assert!(is_login(login_line(0xdead).as_bytes()));
        assert!(!is_login(b"BUILD GAFGYT mips"));
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode_line(".udpraw 1.2.3.4 80").is_none());
        assert!(decode_line(".nurse nope 30").is_none());
        assert!(decode_line(".unknown 1.2.3.4 80 30").is_none());
    }
}
