//! Mozi: P2P (DHT-flavoured) gossip over UDP.
//!
//! Mozi has no C2 server — it bootstraps into a DHT of peers. The paper
//! filters Mozi samples out of the C2 study (§2.3) and notes that
//! AVClass2 *mislabels* Mozi as Mirai; both behaviours are reproduced in
//! this codebase (the filter in `malnet-core`, the mislabel in
//! `malnet-intel`). Here we implement the gossip messages so Mozi samples
//! generate authentic-looking peer traffic in captures.
//!
//! Message format (simplified bencode-flavoured):
//! `M z` magic, one command byte (`p` ping / `r` pong / `f` find_node /
//! `n` nodes), then a 20-byte node id, then for `n` a count byte and
//! 6-byte compact peer entries (ip:port).

use std::net::Ipv4Addr;

/// Mozi's conventional UDP port in our world.
pub const MOZI_PORT: u16 = 14_737;

/// A gossip message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoziMsg {
    /// Liveness probe.
    Ping {
        /// Sender's DHT node id.
        node_id: [u8; 20],
    },
    /// Liveness answer.
    Pong {
        /// Sender's DHT node id.
        node_id: [u8; 20],
    },
    /// Peer discovery request.
    FindNode {
        /// Sender's DHT node id.
        node_id: [u8; 20],
    },
    /// Peer discovery answer.
    Nodes {
        /// Sender's DHT node id.
        node_id: [u8; 20],
        /// Compact peer list.
        peers: Vec<(Ipv4Addr, u16)>,
    },
}

impl MoziMsg {
    /// Serialize to datagram bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(b"Mz");
        match self {
            MoziMsg::Ping { node_id } => {
                out.push(b'p');
                out.extend_from_slice(node_id);
            }
            MoziMsg::Pong { node_id } => {
                out.push(b'r');
                out.extend_from_slice(node_id);
            }
            MoziMsg::FindNode { node_id } => {
                out.push(b'f');
                out.extend_from_slice(node_id);
            }
            MoziMsg::Nodes { node_id, peers } => {
                out.push(b'n');
                out.extend_from_slice(node_id);
                out.push(peers.len() as u8);
                for (ip, port) in peers {
                    out.extend_from_slice(&ip.octets());
                    out.extend_from_slice(&port.to_be_bytes());
                }
            }
        }
        out
    }

    /// Parse from datagram bytes.
    pub fn decode(data: &[u8]) -> Option<Self> {
        if data.len() < 23 || &data[0..2] != b"Mz" {
            return None;
        }
        let mut node_id = [0u8; 20];
        node_id.copy_from_slice(&data[3..23]);
        match data[2] {
            b'p' => Some(MoziMsg::Ping { node_id }),
            b'r' => Some(MoziMsg::Pong { node_id }),
            b'f' => Some(MoziMsg::FindNode { node_id }),
            b'n' => {
                let count = usize::from(*data.get(23)?);
                let mut peers = Vec::with_capacity(count);
                let mut pos = 24;
                for _ in 0..count {
                    let e = data.get(pos..pos + 6)?;
                    peers.push((
                        Ipv4Addr::new(e[0], e[1], e[2], e[3]),
                        u16::from_be_bytes([e[4], e[5]]),
                    ));
                    pos += 6;
                }
                Some(MoziMsg::Nodes { node_id, peers })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seed: u8) -> [u8; 20] {
        let mut x = [0u8; 20];
        for (i, b) in x.iter_mut().enumerate() {
            *b = seed.wrapping_add(i as u8);
        }
        x
    }

    #[test]
    fn ping_pong_roundtrip() {
        for msg in [
            MoziMsg::Ping { node_id: id(1) },
            MoziMsg::Pong { node_id: id(2) },
        ] {
            assert_eq!(MoziMsg::decode(&msg.encode()), Some(msg));
        }
    }

    #[test]
    fn nodes_roundtrip() {
        let msg = MoziMsg::Nodes {
            node_id: id(9),
            peers: vec![
                (Ipv4Addr::new(10, 0, 0, 1), MOZI_PORT),
                (Ipv4Addr::new(10, 0, 0, 2), 9999),
            ],
        };
        assert_eq!(MoziMsg::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn garbage_rejected() {
        assert!(MoziMsg::decode(b"").is_none());
        assert!(MoziMsg::decode(b"Mzx0123456789012345678901").is_none());
        assert!(MoziMsg::decode(b"XX p").is_none());
        // Truncated peer list.
        let mut bytes = MoziMsg::Nodes {
            node_id: id(0),
            peers: vec![(Ipv4Addr::new(1, 2, 3, 4), 5)],
        }
        .encode();
        bytes.truncate(bytes.len() - 2);
        assert!(MoziMsg::decode(&bytes).is_none());
    }
}
