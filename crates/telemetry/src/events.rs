//! The live `malnet.events` v1 stream: append-only JSONL observability.
//!
//! A [`RunReport`] is a *post-hoc* snapshot — useless for a paper-scale
//! study (1447 samples over 31 weeks) that should be observable while it
//! runs. An [`EventSink`] is the streaming complement: the pipeline
//! appends one JSON object per line as lifecycle milestones pass —
//! study/day/phase boundaries, per-day rollup rows, quarantine and chaos
//! events, progress heartbeats, and full counter snapshots at day
//! boundaries — and a watcher (`study_watch`) tails the file to render
//! live progress.
//!
//! ## Determinism contract
//!
//! Every event is emitted on the **coordinator thread at a deterministic
//! point** (a day boundary, a merge step in sample-id order, a probing
//! day-group join), and every payload field is derived from deterministic
//! state: simulation counters, sequence numbers, dataset sizes. The only
//! wall-clock value that ever reaches the stream is the `wall_us` field
//! of the day rollup row, which arrives pre-computed from
//! [`Telemetry::stopwatch`] — this module itself never reads a clock
//! (enforced by `source_lint`'s event-payload rule). Consequences:
//!
//! * attaching a sink cannot perturb a single output byte (the
//!   determinism suite diffs streaming on/off across parallelism
//!   1/2/8/64 × chaos), and
//! * the stream itself is byte-identical across parallelism levels once
//!   `wall_us` is masked.
//!
//! ## Consistency contract (the fold)
//!
//! [`validate_stream`] checks the stream's well-formedness (contiguous
//! sequence numbers, one `stream_start`/`stream_end` pair, strictly
//! increasing days, balanced phases, monotone counter snapshots) and
//! folds it into a [`StreamSummary`]; [`fold_matches_report`] then
//! asserts the headline property: the last counter snapshot and the
//! accumulated rollup rows reconstruct the final [`RunReport`]'s
//! counters and rollups **exactly**. A stream that drifts from the
//! report it narrates fails CI.
//!
//! [`Telemetry::stopwatch`]: crate::Telemetry::stopwatch
//! [`RunReport`]: crate::RunReport

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::{Arc, Mutex};

use crate::json::{self, Value};
use crate::report::json_str;
use crate::RunReport;

/// The schema identifier on the stream's `stream_start` line.
pub const EVENTS_SCHEMA: &str = "malnet.events";
/// The current stream schema version.
pub const EVENTS_VERSION: u64 = 1;

/// One event payload field: unsigned integers (counters, day numbers,
/// sizes) or short strings (phase names, hashes, fault details).
#[derive(Debug, Clone, Copy)]
pub enum Field<'a> {
    /// An unsigned integer field.
    U(u64),
    /// A string field (escaped on write).
    S(&'a str),
}

/// A parsed field value from [`parse_event_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integer field.
    U64(u64),
    /// A string field.
    Str(String),
}

impl FieldValue {
    /// The integer payload, if any.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(n) => Some(*n),
            FieldValue::Str(_) => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            FieldValue::U64(_) => None,
        }
    }
}

/// One parsed line of a `malnet.events` stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Zero-based, contiguous sequence number.
    pub seq: u64,
    /// Event kind (`stream_start`, `day_start`, `rollup`, ...).
    pub kind: String,
    /// Rollup key (`rollup` events only).
    pub key: Option<String>,
    /// Payload fields in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Look up a field's integer value.
    pub fn u64(&self, name: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_u64())
    }

    /// Look up a field's string value.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_str())
    }
}

#[derive(Debug)]
enum SinkOut {
    /// Collect lines in memory (tests, the determinism suite).
    Memory(Vec<u8>),
    /// Append to a file, flushing per line so a tailer sees complete
    /// lines promptly.
    File(std::io::BufWriter<std::fs::File>),
}

#[derive(Debug)]
struct SinkState {
    seq: u64,
    finished: bool,
    out: SinkOut,
}

/// An append-only `malnet.events` v1 JSONL writer. Cheap to clone
/// (shared state), `Send + Sync`; normally attached to a live registry
/// via [`Telemetry::enabled_with_events`].
///
/// Construction emits the `stream_start` header line; [`EventSink::finish`]
/// emits `stream_end` and seals the stream (later emissions are dropped).
/// I/O errors are swallowed: observability must never abort a study.
///
/// [`Telemetry::enabled_with_events`]: crate::Telemetry::enabled_with_events
#[derive(Debug, Clone)]
pub struct EventSink {
    inner: Arc<Mutex<SinkState>>,
}

impl EventSink {
    fn new(out: SinkOut) -> Self {
        let sink = EventSink {
            inner: Arc::new(Mutex::new(SinkState {
                seq: 0,
                finished: false,
                out,
            })),
        };
        sink.emit(
            "stream_start",
            None,
            &[
                ("schema", Field::S(EVENTS_SCHEMA)),
                ("version", Field::U(EVENTS_VERSION)),
            ],
        );
        sink
    }

    /// A sink that buffers the stream in memory; read it back with
    /// [`EventSink::contents`].
    pub fn in_memory() -> Self {
        Self::new(SinkOut::Memory(Vec::new()))
    }

    /// A sink that streams to `path` (truncating any previous stream).
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = std::fs::File::create(path)?;
        Ok(Self::new(SinkOut::File(std::io::BufWriter::new(file))))
    }

    /// Append one event line. Dropped silently once the stream is
    /// finished.
    pub fn emit(&self, kind: &str, key: Option<&str>, fields: &[(&str, Field<'_>)]) {
        let mut state = self.inner.lock().unwrap();
        if state.finished {
            return;
        }
        let mut line = String::with_capacity(96);
        let _ = write!(line, "{{\"seq\":{},\"event\":{}", state.seq, json_str(kind));
        if let Some(key) = key {
            let _ = write!(line, ",\"key\":{}", json_str(key));
        }
        line.push_str(",\"fields\":{");
        for (i, (name, value)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            match value {
                Field::U(n) => {
                    let _ = write!(line, "{}:{n}", json_str(name));
                }
                Field::S(s) => {
                    let _ = write!(line, "{}:{}", json_str(name), json_str(s));
                }
            }
        }
        line.push_str("}}\n");
        state.seq += 1;
        match &mut state.out {
            SinkOut::Memory(buf) => buf.extend_from_slice(line.as_bytes()),
            SinkOut::File(w) => {
                let _ = w.write_all(line.as_bytes());
                let _ = w.flush();
            }
        }
    }

    /// Emit the terminal `stream_end` line (carrying the total line
    /// count) and seal the stream. Idempotent.
    pub fn finish(&self) {
        let total = {
            let state = self.inner.lock().unwrap();
            if state.finished {
                return;
            }
            state.seq + 1
        };
        self.emit("stream_end", None, &[("events", Field::U(total))]);
        self.inner.lock().unwrap().finished = true;
    }

    /// The buffered stream of an in-memory sink (`None` for file sinks).
    pub fn contents(&self) -> Option<String> {
        match &self.inner.lock().unwrap().out {
            SinkOut::Memory(buf) => Some(String::from_utf8_lossy(buf).into_owned()),
            SinkOut::File(_) => None,
        }
    }
}

/// Parse one stream line into an [`Event`].
pub fn parse_event_line(line: &str) -> Result<Event, String> {
    let v = json::parse(line)?;
    let seq = v
        .get("seq")
        .and_then(Value::as_u64)
        .ok_or("missing \"seq\"")?;
    let kind = v
        .get("event")
        .and_then(Value::as_str)
        .ok_or("missing \"event\"")?
        .to_string();
    let key = v.get("key").and_then(Value::as_str).map(str::to_string);
    let Some(Value::Obj(members)) = v.get("fields") else {
        return Err("missing \"fields\" object".to_string());
    };
    let mut fields = Vec::with_capacity(members.len());
    for (name, value) in members {
        let parsed = match value {
            Value::Int(n) => FieldValue::U64(*n),
            Value::Str(s) => FieldValue::Str(s.clone()),
            other => {
                return Err(format!(
                    "field {name:?} is neither u64 nor string: {other:?}"
                ))
            }
        };
        fields.push((name.clone(), parsed));
    }
    Ok(Event {
        seq,
        kind,
        key,
        fields,
    })
}

/// The fold of a validated stream: everything a consumer needs to
/// reconstruct the run's final counters and rollups, plus tallies of the
/// lifecycle events seen along the way.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Total lines (== the `stream_end` line's `events` field).
    pub events: u64,
    /// `day_start` days, strictly increasing.
    pub days: Vec<u64>,
    /// The last counter snapshot (name-sorted), i.e. the fold of every
    /// `counters` event — must equal the final report's counters.
    pub final_counters: Vec<(String, u64)>,
    /// Accumulated `rollup` rows in arrival order — must equal the final
    /// report's rollups.
    pub rollups: Vec<(String, Vec<(String, u64)>)>,
    /// `heartbeat` events seen.
    pub heartbeats: u64,
    /// `quarantine` events seen.
    pub quarantines: u64,
    /// `chaos` events seen.
    pub chaos_events: u64,
    /// Samples completed per the last heartbeat.
    pub samples_completed: u64,
}

/// Validate a complete stream and fold it into a [`StreamSummary`].
///
/// Checks: every line parses; sequence numbers are contiguous from 0;
/// the first event is a v1 `stream_start` and the last a `stream_end`
/// whose `events` count matches; nothing follows `stream_end`;
/// `day_start` days strictly increase; every `phase_end` closes the
/// innermost open `phase_start` of the same name and none stay open;
/// counter snapshots are monotone (no counter ever decreases or
/// disappears); heartbeat progress is monotone; rollup rows carry no
/// duplicate field names and day-keyed rows strictly increase.
pub fn validate_stream(text: &str) -> Result<StreamSummary, String> {
    let mut summary = StreamSummary::default();
    let mut expected_seq = 0u64;
    let mut phase_stack: Vec<String> = Vec::new();
    let mut last_counters: Vec<(String, u64)> = Vec::new();
    let mut last_day_rollup: Option<u64> = None;
    let mut ended = false;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if ended {
            return Err(format!("line {lineno}: event after stream_end"));
        }
        let ev = parse_event_line(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if ev.seq != expected_seq {
            return Err(format!(
                "line {lineno}: sequence gap (expected seq {expected_seq}, got {})",
                ev.seq
            ));
        }
        expected_seq += 1;
        if i == 0 {
            if ev.kind != "stream_start" {
                return Err(format!("line 1: expected stream_start, got {:?}", ev.kind));
            }
            if ev.str("schema") != Some(EVENTS_SCHEMA) {
                return Err("line 1: wrong or missing schema".to_string());
            }
            if ev.u64("version") != Some(EVENTS_VERSION) {
                return Err("line 1: wrong or missing version".to_string());
            }
            continue;
        }
        match ev.kind.as_str() {
            "stream_start" => {
                return Err(format!("line {lineno}: duplicate stream_start"));
            }
            "stream_end" => {
                let declared = ev
                    .u64("events")
                    .ok_or(format!("line {lineno}: stream_end lacks \"events\""))?;
                if declared != expected_seq {
                    return Err(format!(
                        "line {lineno}: stream_end declares {declared} events, stream has {expected_seq}"
                    ));
                }
                if !phase_stack.is_empty() {
                    return Err(format!(
                        "line {lineno}: stream ended with open phase(s) {phase_stack:?}"
                    ));
                }
                ended = true;
            }
            "day_start" => {
                let day = ev
                    .u64("day")
                    .ok_or(format!("line {lineno}: day_start lacks \"day\""))?;
                if summary.days.last().is_some_and(|&prev| day <= prev) {
                    return Err(format!(
                        "line {lineno}: day_start {day} does not increase (last {:?})",
                        summary.days.last()
                    ));
                }
                summary.days.push(day);
            }
            "phase_start" => {
                let phase = ev
                    .str("phase")
                    .ok_or(format!("line {lineno}: phase_start lacks \"phase\""))?;
                phase_stack.push(phase.to_string());
            }
            "phase_end" => {
                let phase = ev
                    .str("phase")
                    .ok_or(format!("line {lineno}: phase_end lacks \"phase\""))?;
                match phase_stack.pop() {
                    Some(open) if open == phase => {}
                    open => {
                        return Err(format!(
                            "line {lineno}: phase_end {phase:?} closes {open:?}"
                        ))
                    }
                }
            }
            "counters" => {
                let mut snapshot: Vec<(String, u64)> = Vec::with_capacity(ev.fields.len());
                for (name, value) in &ev.fields {
                    let n = value
                        .as_u64()
                        .ok_or(format!("line {lineno}: counter {name:?} is not an integer"))?;
                    snapshot.push((name.clone(), n));
                }
                for (name, prev) in &last_counters {
                    match snapshot.iter().find(|(n, _)| n == name) {
                        None => {
                            return Err(format!(
                                "line {lineno}: counter {name:?} vanished from the snapshot"
                            ))
                        }
                        Some((_, now)) if now < prev => {
                            return Err(format!(
                                "line {lineno}: counter {name:?} decreased ({prev} -> {now})"
                            ))
                        }
                        Some(_) => {}
                    }
                }
                last_counters = snapshot;
            }
            "heartbeat" => {
                summary.heartbeats += 1;
                let done = ev.u64("samples_completed").ok_or(format!(
                    "line {lineno}: heartbeat lacks \"samples_completed\""
                ))?;
                if done < summary.samples_completed {
                    return Err(format!(
                        "line {lineno}: heartbeat progress went backwards ({} -> {done})",
                        summary.samples_completed
                    ));
                }
                summary.samples_completed = done;
            }
            "rollup" => {
                let key = ev
                    .key
                    .clone()
                    .ok_or(format!("line {lineno}: rollup lacks \"key\""))?;
                let mut fields: Vec<(String, u64)> = Vec::with_capacity(ev.fields.len());
                for (name, value) in &ev.fields {
                    if fields.iter().any(|(n, _)| n == name) {
                        return Err(format!(
                            "line {lineno}: rollup has duplicate field {name:?}"
                        ));
                    }
                    let n = value.as_u64().ok_or(format!(
                        "line {lineno}: rollup field {name:?} is not an integer"
                    ))?;
                    fields.push((name.clone(), n));
                }
                if key == "day" {
                    let day = ev
                        .u64("day")
                        .ok_or(format!("line {lineno}: day rollup lacks \"day\""))?;
                    if last_day_rollup.is_some_and(|prev| day <= prev) {
                        return Err(format!(
                            "line {lineno}: day rollup {day} does not increase (last {last_day_rollup:?})"
                        ));
                    }
                    last_day_rollup = Some(day);
                }
                summary.rollups.push((key, fields));
            }
            "quarantine" => summary.quarantines += 1,
            "chaos" => summary.chaos_events += 1,
            // Forward compatibility: unknown lifecycle kinds
            // (study_start, probe_day, ...) are structural no-ops.
            _ => {}
        }
    }
    if !ended {
        return Err(format!(
            "stream not terminated: {expected_seq} event(s), no stream_end"
        ));
    }
    summary.events = expected_seq;
    summary.final_counters = last_counters;
    Ok(summary)
}

/// The consistency contract: the stream's fold must reconstruct the
/// final report's counters and rollup rows exactly — same names, same
/// values, same order (both sides are name-sorted for counters and
/// arrival-ordered for rollups).
pub fn fold_matches_report(summary: &StreamSummary, report: &RunReport) -> Result<(), String> {
    if summary.final_counters != report.counters {
        let diff: Vec<String> = report
            .counters
            .iter()
            .filter(|pair| !summary.final_counters.contains(pair))
            .map(|(n, v)| format!("{n}={v}"))
            .collect();
        return Err(format!(
            "stream fold does not reconstruct the report's counters \
             (stream has {}, report has {}; report-only entries: {})",
            summary.final_counters.len(),
            report.counters.len(),
            diff.join(", ")
        ));
    }
    if summary.rollups != report.rollups {
        return Err(format!(
            "stream fold does not reconstruct the report's rollups \
             (stream has {} rows, report has {})",
            summary.rollups.len(),
            report.rollups.len()
        ));
    }
    Ok(())
}

/// Incremental, stateful fold of a growing `malnet.events` stream —
/// the engine behind `study_watch --follow`.
///
/// The legacy follower re-read and re-folded the entire events file on
/// every 500 ms poll tick, which is O(n²) work over a study's lifetime
/// (a day-432 stream was folded hundreds of times per minute near the
/// end). `StreamTail` consumes only newly appended bytes: feed it
/// chunks split at **any** boundary — including mid-line; the sink
/// flushes whole lines, but a reader can still observe a torn tail
/// between the write and the flush — and it folds exactly the complete
/// lines, carrying an unterminated tail until its newline arrives.
///
/// The fold is the lenient watcher fold, not the strict one: no
/// structural checks (CI's `--validate` path uses [`validate_stream`]
/// on the finished file), and the first complete line that fails to
/// parse poisons the tail — folding stops for good, matching the old
/// break-on-first-bad-line behaviour.
#[derive(Debug, Clone, Default)]
pub struct StreamTail {
    /// Bytes of an unterminated trailing line, held until its newline.
    carry: String,
    summary: StreamSummary,
    complete: bool,
    poisoned: bool,
}

impl StreamTail {
    /// A fresh tail with nothing folded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the next chunk of the stream. Complete lines fold
    /// immediately; a trailing partial line is carried (the summary
    /// does not change) until a later chunk terminates it.
    pub fn push(&mut self, chunk: &str) {
        let mut rest = chunk;
        while let Some(nl) = rest.find('\n') {
            let (head, tail) = rest.split_at(nl);
            rest = &tail[1..];
            if self.carry.is_empty() {
                self.fold_line(head);
            } else {
                let mut line = std::mem::take(&mut self.carry);
                line.push_str(head);
                self.fold_line(&line);
            }
        }
        self.carry.push_str(rest);
    }

    /// Fold the carried partial line, if any, as though it were
    /// complete. For one-shot reads of a file that does not end in a
    /// newline; a follower should *not* call this (the next chunk may
    /// still be coming).
    pub fn flush_partial(&mut self) {
        if !self.carry.is_empty() {
            let line = std::mem::take(&mut self.carry);
            self.fold_line(&line);
        }
    }

    /// The fold so far. Only complete, parsed lines are reflected.
    pub fn summary(&self) -> &StreamSummary {
        &self.summary
    }

    /// Has `stream_end` been folded?
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Did a complete line fail to parse? Once poisoned, further pushes
    /// are ignored and the summary is frozen at the last good line.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn fold_line(&mut self, line: &str) {
        if self.poisoned {
            return;
        }
        let Ok(ev) = parse_event_line(line) else {
            self.poisoned = true;
            return;
        };
        self.summary.events += 1;
        match ev.kind.as_str() {
            "stream_end" => self.complete = true,
            "day_start" => self.summary.days.extend(ev.u64("day")),
            "heartbeat" => {
                self.summary.heartbeats += 1;
                if let Some(done) = ev.u64("samples_completed") {
                    self.summary.samples_completed = done;
                }
            }
            "counters" => {
                self.summary.final_counters = ev
                    .fields
                    .iter()
                    .filter_map(|(n, v)| v.as_u64().map(|v| (n.clone(), v)))
                    .collect();
            }
            "rollup" => {
                if let Some(key) = ev.key.clone() {
                    let fields = ev
                        .fields
                        .iter()
                        .filter_map(|(n, v)| v.as_u64().map(|v| (n.clone(), v)))
                        .collect();
                    self.summary.rollups.push((key, fields));
                }
            }
            "quarantine" => self.summary.quarantines += 1,
            "chaos" => self.summary.chaos_events += 1,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn field_u(n: u64) -> Field<'static> {
        Field::U(n)
    }

    #[test]
    fn sink_emits_versioned_contiguous_lines() {
        let sink = EventSink::in_memory();
        sink.emit("day_start", None, &[("day", field_u(0))]);
        sink.emit(
            "quarantine",
            None,
            &[("sha256", Field::S("ab\"c")), ("day", field_u(0))],
        );
        sink.finish();
        let text = sink.contents().unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let first = parse_event_line(lines[0]).unwrap();
        assert_eq!(first.kind, "stream_start");
        assert_eq!(first.str("schema"), Some(EVENTS_SCHEMA));
        let q = parse_event_line(lines[2]).unwrap();
        assert_eq!(q.seq, 2);
        assert_eq!(q.str("sha256"), Some("ab\"c"));
        let end = parse_event_line(lines[3]).unwrap();
        assert_eq!(end.kind, "stream_end");
        assert_eq!(end.u64("events"), Some(4));
        // Sealed: later emissions are dropped, finish is idempotent.
        sink.emit("day_start", None, &[]);
        sink.finish();
        assert_eq!(sink.contents().unwrap(), text);
    }

    #[test]
    fn validate_accepts_a_well_formed_stream() {
        let sink = EventSink::in_memory();
        sink.emit("study_start", None, &[("seed", field_u(22))]);
        for day in [0u64, 3, 7] {
            sink.emit("day_start", None, &[("day", field_u(day))]);
            sink.emit("phase_start", None, &[("phase", Field::S("phase_a"))]);
            sink.emit("phase_end", None, &[("phase", Field::S("phase_a"))]);
            sink.emit(
                "heartbeat",
                None,
                &[
                    ("day", field_u(day)),
                    ("samples_completed", field_u(day + 1)),
                ],
            );
            sink.emit(
                "rollup",
                Some("day"),
                &[("day", field_u(day)), ("samples", field_u(2))],
            );
            sink.emit(
                "counters",
                None,
                &[("a.x", field_u(day * 2)), ("b.y", field_u(day + 5))],
            );
        }
        sink.finish();
        let summary = validate_stream(&sink.contents().unwrap()).expect("valid");
        assert_eq!(summary.days, vec![0, 3, 7]);
        assert_eq!(summary.heartbeats, 3);
        assert_eq!(summary.samples_completed, 8);
        assert_eq!(summary.rollups.len(), 3);
        assert_eq!(
            summary.final_counters,
            vec![("a.x".to_string(), 14), ("b.y".to_string(), 12)]
        );
    }

    #[test]
    fn validate_rejects_malformed_streams() {
        // Unterminated.
        let sink = EventSink::in_memory();
        sink.emit("day_start", None, &[("day", field_u(0))]);
        let text = sink.contents().unwrap();
        assert!(validate_stream(&text)
            .unwrap_err()
            .contains("not terminated"));

        // Sequence gap (drop a middle line).
        let sink = EventSink::in_memory();
        sink.emit("day_start", None, &[("day", field_u(0))]);
        sink.emit("day_start", None, &[("day", field_u(1))]);
        sink.finish();
        let full = sink.contents().unwrap();
        let cut: Vec<&str> = full
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, l)| l)
            .collect();
        assert!(validate_stream(&cut.join("\n"))
            .unwrap_err()
            .contains("sequence gap"));

        // Non-increasing days.
        let sink = EventSink::in_memory();
        sink.emit("day_start", None, &[("day", field_u(4))]);
        sink.emit("day_start", None, &[("day", field_u(4))]);
        sink.finish();
        assert!(validate_stream(&sink.contents().unwrap())
            .unwrap_err()
            .contains("does not increase"));

        // Unbalanced phases.
        let sink = EventSink::in_memory();
        sink.emit("phase_start", None, &[("phase", Field::S("phase_a"))]);
        sink.emit("phase_end", None, &[("phase", Field::S("phase_b"))]);
        sink.finish();
        assert!(validate_stream(&sink.contents().unwrap())
            .unwrap_err()
            .contains("phase_end"));

        // A counter going backwards.
        let sink = EventSink::in_memory();
        sink.emit("counters", None, &[("a", field_u(5))]);
        sink.emit("counters", None, &[("a", field_u(3))]);
        sink.finish();
        assert!(validate_stream(&sink.contents().unwrap())
            .unwrap_err()
            .contains("decreased"));

        // Day rollups that repeat a day.
        let sink = EventSink::in_memory();
        sink.emit("rollup", Some("day"), &[("day", field_u(2))]);
        sink.emit("rollup", Some("day"), &[("day", field_u(2))]);
        sink.finish();
        assert!(validate_stream(&sink.contents().unwrap())
            .unwrap_err()
            .contains("day rollup"));
    }

    #[test]
    fn telemetry_integration_folds_back_to_the_report() {
        let sink = EventSink::in_memory();
        let tel = Telemetry::enabled_with_events(sink.clone());
        tel.counter("pipeline.samples_analyzed").add(9);
        tel.counter("sandbox.instructions_retired").add(u64::MAX);
        tel.rollup("day", &[("day", 0), ("samples", 9)]);
        tel.counters_event();
        tel.finish_events();
        let summary = validate_stream(&sink.contents().unwrap()).expect("valid stream");
        fold_matches_report(&summary, &tel.report()).expect("fold reconstructs report");
    }

    #[test]
    fn fold_mismatches_are_reported() {
        let sink = EventSink::in_memory();
        let tel = Telemetry::enabled_with_events(sink.clone());
        tel.counter("a").add(1);
        tel.counters_event();
        tel.counter("a").add(1); // report moves after the last snapshot
        tel.finish_events();
        let summary = validate_stream(&sink.contents().unwrap()).unwrap();
        let err = fold_matches_report(&summary, &tel.report()).unwrap_err();
        assert!(err.contains("counters"), "{err}");
    }

    /// A large synthetic study stream: `days` day blocks, each with a
    /// heartbeat, rollup, counters snapshot and some lifecycle noise.
    fn synthetic_stream(days: u64) -> String {
        let sink = EventSink::in_memory();
        sink.emit("study_start", None, &[("seed", field_u(7))]);
        for day in 0..days {
            sink.emit("day_start", None, &[("day", field_u(day))]);
            sink.emit("phase_start", None, &[("phase", Field::S("phase_a"))]);
            sink.emit("phase_end", None, &[("phase", Field::S("phase_a"))]);
            if day % 5 == 0 {
                sink.emit(
                    "quarantine",
                    None,
                    &[("sha256", Field::S("feed\"back")), ("day", field_u(day))],
                );
            }
            if day % 7 == 0 {
                sink.emit(
                    "chaos",
                    None,
                    &[("day", field_u(day)), ("kind", Field::S("c2_downtime"))],
                );
            }
            sink.emit(
                "rollup",
                Some("day"),
                &[("day", field_u(day)), ("samples", field_u(day % 9))],
            );
            sink.emit(
                "heartbeat",
                None,
                &[
                    ("day", field_u(day)),
                    ("samples_completed", field_u(day * 3)),
                ],
            );
            sink.emit(
                "counters",
                None,
                &[
                    ("pipeline.samples_analyzed", field_u(day * 3)),
                    ("sandbox.instructions_retired", field_u(day * 1_000_001)),
                ],
            );
        }
        sink.finish();
        sink.contents().unwrap()
    }

    /// The stateful tail must produce the same fold as a single batch
    /// push, no matter how the byte stream is chunked — including
    /// chunks that tear lines mid-JSON. This is the regression test for
    /// the `study_watch --follow` O(n²) re-fold fix: the follower now
    /// feeds only appended bytes through this incremental path.
    #[test]
    fn stream_tail_fold_is_chunking_invariant() {
        let text = synthetic_stream(400);
        assert!(text.len() > 100_000, "stream not large: {}", text.len());
        let mut batch = StreamTail::new();
        batch.push(&text);
        assert!(batch.is_complete());
        assert!(!batch.is_poisoned());
        assert_eq!(batch.summary().days.len(), 400);

        // The stream is ASCII JSON, so any byte split is a char split.
        for chunk in [1usize, 3, 7, 64, 509, 4096] {
            let mut tail = StreamTail::new();
            for part in text.as_bytes().chunks(chunk) {
                tail.push(std::str::from_utf8(part).unwrap());
            }
            assert_eq!(tail.summary(), batch.summary(), "chunk size {chunk}");
            assert!(tail.is_complete(), "chunk size {chunk}");
            assert!(!tail.is_poisoned(), "chunk size {chunk}");
        }

        // And the batch fold agrees with the strict validator's.
        let strict = validate_stream(&text).expect("valid");
        assert_eq!(batch.summary(), &strict);
    }

    /// A flushed-but-torn trailing line must not perturb the fold: the
    /// summary is frozen until the line's newline arrives, then the
    /// line folds exactly once.
    #[test]
    fn stream_tail_carries_partial_lines() {
        let text = synthetic_stream(10);
        let lines: Vec<&str> = text.lines().collect();
        let mut tail = StreamTail::new();
        let head = lines[..3].join("\n");
        tail.push(&head);
        tail.push("\n");
        let folded = tail.summary().clone();
        // Push half of the next line: nothing may change.
        let (torn_a, torn_b) = lines[3].split_at(lines[3].len() / 2);
        tail.push(torn_a);
        assert_eq!(tail.summary(), &folded, "torn line leaked into the fold");
        // Terminating it folds the line exactly once.
        tail.push(torn_b);
        tail.push("\n");
        assert_eq!(tail.summary().events, folded.events + 1);
        // A one-shot reader may force the carry out instead.
        let mut oneshot = StreamTail::new();
        oneshot.push(lines[0]);
        assert_eq!(oneshot.summary().events, 0);
        oneshot.flush_partial();
        assert_eq!(oneshot.summary().events, 1);
    }

    /// A complete line that does not parse poisons the tail: the fold
    /// freezes at the last good line (the legacy watcher's
    /// break-on-first-bad-line semantics, made permanent).
    #[test]
    fn stream_tail_poisons_on_garbage() {
        let text = synthetic_stream(4);
        let mut tail = StreamTail::new();
        tail.push(&text);
        let good = tail.summary().clone();
        let mut poisoned = StreamTail::new();
        poisoned.push(&text);
        poisoned.push("not json at all\n");
        poisoned.push(&text);
        assert!(poisoned.is_poisoned());
        assert_eq!(poisoned.summary(), &good, "post-poison lines folded");
    }

    #[test]
    fn file_sink_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("malnet-events-{}", std::process::id()));
        let path = dir.join("events.jsonl");
        let sink = EventSink::create(&path).expect("create sink");
        assert!(sink.contents().is_none());
        sink.emit("day_start", None, &[("day", Field::U(0))]);
        sink.finish();
        let text = std::fs::read_to_string(&path).expect("read back");
        let summary = validate_stream(&text).expect("valid");
        assert_eq!(summary.events, 3);
        assert_eq!(summary.days, vec![0]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
