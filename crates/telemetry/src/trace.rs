//! Chrome trace-event export of the span tree.
//!
//! [`chrome_trace`] renders a [`RunReport`]'s aggregated spans as a
//! `chrome://tracing` / Perfetto-compatible JSON document of complete
//! (`"ph":"X"`) events, one per span name, nested by the report's
//! recorded parent links. Our spans are *aggregates* (total wall time
//! across all calls), not individual intervals, so the export is a
//! flamegraph-style layout rather than a literal timeline: each span's
//! duration is its aggregate `total_us`, children are laid out
//! sequentially from their parent's start, and a `calls` arg carries
//! the call count. Timestamps are synthetic (derived only from the
//! report's own microsecond totals — no clock is read here), which
//! keeps the export as deterministic as the report it came from.

use std::fmt::Write as _;

use crate::report::{json_str, RunReport};

/// Render the report's span tree as a Chrome trace-event JSON document
/// (`{"traceEvents":[...],"displayTimeUnit":"ms"}`).
///
/// Roots (spans with no recorded parent) are laid out back-to-back in
/// name order on pid 1 / tid 1; each span's children start at its own
/// start timestamp and run sequentially. A child whose `total_us`
/// exceeds its parent's (possible: aggregates include cross-thread
/// fan-out time) simply overflows the parent's box — viewers render
/// this fine. Cycles or dangling parent names (possible only in a
/// hand-edited report) are broken by treating the offending span as a
/// root.
pub fn chrome_trace(report: &RunReport) -> String {
    // Child indices per parent name, preserving the report's name order.
    let mut roots: Vec<usize> = Vec::new();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); report.spans.len()];
    let index_of = |name: &str| report.spans.iter().position(|s| s.name == name);
    for (i, span) in report.spans.iter().enumerate() {
        match span.parent.as_deref().and_then(index_of) {
            // A span whose recorded parent is itself (degenerate) or
            // missing is treated as a root.
            Some(p) if p != i => children[p].push(i),
            _ => roots.push(i),
        }
    }

    let mut events: Vec<(usize, u64)> = Vec::with_capacity(report.spans.len());
    let mut visiting = vec![false; report.spans.len()];
    // Iterative DFS carrying each span's start timestamp.
    let mut stack: Vec<(usize, u64)> = Vec::new();
    let mut cursor = 0u64;
    for &root in &roots {
        stack.push((root, cursor));
        cursor = cursor.saturating_add(report.spans[root].total_us);
        while let Some((i, ts)) = stack.pop() {
            if visiting[i] {
                continue; // cycle guard: emit each span once
            }
            visiting[i] = true;
            events.push((i, ts));
            let mut child_ts = ts;
            for &c in &children[i] {
                stack.push((c, child_ts));
                child_ts = child_ts.saturating_add(report.spans[c].total_us);
            }
        }
    }
    // Anything unreachable from a root (a cycle among non-roots) still
    // gets emitted, at the end of the timeline.
    let emitted = visiting;
    for (i, span) in report.spans.iter().enumerate() {
        if !emitted[i] {
            events.push((i, cursor));
            cursor = cursor.saturating_add(span.total_us);
        }
    }

    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (n, &(i, ts)) in events.iter().enumerate() {
        let span = &report.spans[i];
        if n > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{ts},\"dur\":{},\
             \"args\":{{\"calls\":{},\"self_us\":{}}}}}",
            json_str(&span.name),
            span.total_us,
            span.calls,
            span.self_us
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::report::SpanReport;

    fn span(name: &str, total_us: u64, parent: Option<&str>) -> SpanReport {
        SpanReport {
            name: name.to_string(),
            calls: 1,
            total_us,
            self_us: total_us,
            parent: parent.map(str::to_string),
        }
    }

    #[test]
    fn exports_a_nested_tree_with_sequential_children() {
        let report = RunReport {
            spans: vec![
                span("root", 100, None),
                span("root.a", 30, Some("root")),
                span("root.b", 50, Some("root")),
                span("root.a.x", 10, Some("root.a")),
            ],
            ..RunReport::default()
        };
        let v = json::parse(&chrome_trace(&report)).expect("valid JSON");
        let events = v.get("traceEvents").and_then(|a| a.as_array()).unwrap();
        assert_eq!(events.len(), 4);
        let find = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(|s| s.as_str()) == Some(name))
                .unwrap()
        };
        let ts = |name: &str| find(name).get("ts").and_then(|n| n.as_u64()).unwrap();
        let dur = |name: &str| find(name).get("dur").and_then(|n| n.as_u64()).unwrap();
        // Children start at the parent's start and run back-to-back.
        assert_eq!(ts("root"), 0);
        assert_eq!(ts("root.a"), 0);
        assert_eq!(ts("root.b"), 30);
        assert_eq!(ts("root.a.x"), 0);
        assert_eq!(dur("root"), 100);
        assert_eq!(dur("root.b"), 50);
        assert_eq!(
            find("root")
                .get("args")
                .unwrap()
                .get("calls")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        // The export is a pure function of the report.
        assert_eq!(chrome_trace(&report), chrome_trace(&report));
    }

    #[test]
    fn multiple_roots_lay_out_back_to_back() {
        let report = RunReport {
            spans: vec![span("a", 40, None), span("b", 60, None)],
            ..RunReport::default()
        };
        let v = json::parse(&chrome_trace(&report)).unwrap();
        let events = v.get("traceEvents").and_then(|a| a.as_array()).unwrap();
        assert_eq!(events[0].get("ts").unwrap().as_u64(), Some(0));
        assert_eq!(events[1].get("ts").unwrap().as_u64(), Some(40));
    }

    #[test]
    fn cycles_and_dangling_parents_do_not_hang_or_drop_spans() {
        let report = RunReport {
            spans: vec![
                span("self", 10, Some("self")), // degenerate self-parent
                span("x", 10, Some("y")),       // 2-cycle
                span("y", 10, Some("x")),
                span("orphan", 10, Some("missing")), // dangling parent
            ],
            ..RunReport::default()
        };
        let v = json::parse(&chrome_trace(&report)).expect("valid JSON");
        let events = v.get("traceEvents").and_then(|a| a.as_array()).unwrap();
        assert_eq!(events.len(), 4, "every span is emitted exactly once");
    }

    #[test]
    fn empty_report_exports_an_empty_event_list() {
        let v = json::parse(&chrome_trace(&RunReport::default())).unwrap();
        assert_eq!(
            v.get("traceEvents")
                .and_then(|a| a.as_array())
                .unwrap()
                .len(),
            0
        );
    }
}
