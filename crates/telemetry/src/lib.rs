//! # malnet-telemetry — deterministic-safe tracing and metrics
//!
//! A lightweight, dependency-free observability layer for the MalNet
//! pipeline: span guards with monotonic wall-clock timing, atomic
//! counters, log2-bucketed histograms, ordered rollup rows, and a
//! versioned JSON [`RunReport`] snapshot.
//!
//! ## Design constraints
//!
//! The pipeline's core guarantee is byte-identical output across
//! parallelism levels (DESIGN.md §8), so instrumentation must be
//! **provably inert**:
//!
//! * Telemetry never touches the simulation — no RNG draws, no
//!   `SimTime` reads, no feedback into any instrumented component. The
//!   only clock it reads is [`std::time::Instant`], and only for span
//!   durations, which land exclusively in the report.
//! * All mutation is commutative (atomic adds / min / max), so counter
//!   and histogram totals are identical regardless of thread
//!   scheduling; only wall-times vary run to run.
//! * A [`Telemetry::disabled`] handle carries no registry at all: every
//!   hot-path operation compiles down to a branch on an `Option`
//!   discriminant (see the `telemetry/*` rows in
//!   `crates/bench/benches/components.rs` for the measured cost).
//!
//! ## Usage
//!
//! ```
//! use malnet_telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! {
//!     let _span = tel.span("pipeline.day");
//!     tel.counter("pipeline.samples_analyzed").add(3);
//!     tel.histogram("sandbox.instructions_per_run").record(1 << 20);
//! }
//! let report = tel.report();
//! assert_eq!(report.counter("pipeline.samples_analyzed"), Some(3));
//! let json = report.to_json();
//! assert!(json.contains("\"pipeline.day\""));
//! ```
//!
//! Handles ([`Counter`], [`Histogram`]) are pre-resolved `Arc`s:
//! resolve once at construction, then `add`/`record` lock-free on the
//! hot path. The string-keyed conveniences on [`Telemetry`] lock a
//! registry map and are meant for cold paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod json;
pub mod report;
pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use events::{EventSink, Field};
pub use report::{HistogramReport, RunReport, SpanReport};

/// Number of log2 histogram buckets: bucket 0 holds the value 0, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A handle to the telemetry system: either a shared registry or the
/// inert disabled state. Cheap to clone, `Send + Sync`, safe to share
/// across worker threads.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Registry>>,
}

impl Telemetry {
    /// A live telemetry handle with a fresh registry.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// A live handle that additionally streams lifecycle events to
    /// `sink` (the `malnet.events` v1 JSONL stream): rollup rows are
    /// dual-emitted as they arrive, and instrumented coordinators emit
    /// lifecycle events and counter snapshots through
    /// [`Telemetry::event`] / [`Telemetry::counters_event`]. The sink
    /// only ever *receives* deterministic data — attaching one cannot
    /// perturb any instrumented computation.
    pub fn enabled_with_events(sink: EventSink) -> Self {
        Telemetry {
            inner: Some(Arc::new(Registry {
                events: Some(sink),
                ..Registry::default()
            })),
        }
    }

    /// Emit one event to the attached sink, if any. A no-op on disabled
    /// or sink-less handles, so instrumented code can emit
    /// unconditionally. Callers must only emit from the coordinator
    /// thread at deterministic points with deterministic payloads (see
    /// `events` module docs); `source_lint` keeps clocks out of payload
    /// construction.
    pub fn event(&self, kind: &str, key: Option<&str>, fields: &[(&str, Field<'_>)]) {
        if let Some(sink) = self.inner.as_ref().and_then(|r| r.events.as_ref()) {
            sink.emit(kind, key, fields);
        }
    }

    /// Emit a full counter snapshot (`counters` event, name-sorted) to
    /// the attached sink. Called at day boundaries and at study end;
    /// the stream's fold takes the *last* snapshot, so the final one
    /// must come after all counter movement for
    /// [`events::fold_matches_report`] to hold.
    pub fn counters_event(&self) {
        let Some(r) = &self.inner else { return };
        let Some(sink) = &r.events else { return };
        let snapshot: Vec<(String, u64)> = r
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let fields: Vec<(&str, Field<'_>)> = snapshot
            .iter()
            .map(|(name, v)| (name.as_str(), Field::U(*v)))
            .collect();
        sink.emit("counters", None, &fields);
    }

    /// Seal the attached event stream (emits `stream_end`); a no-op
    /// without a sink. Idempotent.
    pub fn finish_events(&self) {
        if let Some(sink) = self.inner.as_ref().and_then(|r| r.events.as_ref()) {
            sink.finish();
        }
    }

    /// The attached event sink, if any (bench bins use this to reach
    /// the stream for post-run validation).
    pub fn event_sink(&self) -> Option<EventSink> {
        self.inner.as_ref().and_then(|r| r.events.clone())
    }

    /// The inert handle: no registry, every operation is a no-op branch.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Is this handle recording?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolve (or create) a counter handle by name. Resolve once and
    /// reuse the handle on hot paths.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|r| r.counter_cell(name)))
    }

    /// Resolve (or create) a histogram handle by name.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|r| r.histogram_cell(name)))
    }

    /// Enter a named span. The returned guard records wall time into the
    /// span's total on drop; time spent in nested spans on the *same
    /// thread* is attributed to the children and subtracted from this
    /// span's self-time, and the enclosing span's name is recorded as
    /// this span's parent in the report (first enclosure wins).
    ///
    /// Spans opened on worker threads start their own attribution stack
    /// and therefore surface as parentless siblings; a fan-out stage
    /// that wants its per-item spans attributed to the coordinating
    /// span must capture a [`SpanCtx`] with [`Telemetry::current_span`]
    /// before spawning and open worker spans with
    /// [`Telemetry::span_under`].
    pub fn span(&self, name: &str) -> SpanGuard {
        let active = self.inner.as_ref().map(|r| {
            let stat = r.span_cell(name);
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(top) = stack.last() {
                    if !Arc::ptr_eq(top, &stat) {
                        stat.record_parent(&top.name);
                    }
                }
                stack.push(stat.clone());
            });
            ActiveSpan {
                stat,
                start: Instant::now(),
            }
        });
        SpanGuard {
            active,
            injected_parent: None,
        }
    }

    /// Capture the innermost span active on *this* thread, as a handle
    /// that can cross a thread boundary. Pair with
    /// [`Telemetry::span_under`] on the worker side so a fan-out
    /// stage's per-item spans nest under the coordinating span instead
    /// of landing as siblings. Cheap; an empty context when telemetry
    /// is disabled or no span is active.
    pub fn current_span(&self) -> SpanCtx {
        let stat = self
            .inner
            .as_ref()
            .and_then(|_| SPAN_STACK.with(|s| s.borrow().last().cloned()));
        SpanCtx { stat }
    }

    /// Enter a named span as a child of `parent` — typically a
    /// [`SpanCtx`] captured on the coordinating thread before a
    /// fan-out. The worker span's elapsed time is attributed to the
    /// parent's child-time (so the parent's self-time excludes worker
    /// work even across threads) and the parent's name is recorded for
    /// the report's span tree. With an empty context this is exactly
    /// [`Telemetry::span`]. Safe to call on the coordinator thread
    /// itself (the sequential fan-out path): attribution is identical.
    pub fn span_under(&self, name: &str, parent: &SpanCtx) -> SpanGuard {
        let Some(parent_stat) = &parent.stat else {
            return self.span(name);
        };
        let active = self.inner.as_ref().map(|r| {
            let stat = r.span_cell(name);
            if !Arc::ptr_eq(parent_stat, &stat) {
                stat.record_parent(&parent_stat.name);
            }
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Anchor the cross-thread parent below our own entry so
                // `SpanGuard::drop` attributes elapsed time to it; the
                // guard removes the anchor again on drop.
                stack.push(parent_stat.clone());
                stack.push(stat.clone());
            });
            ActiveSpan {
                stat,
                start: Instant::now(),
            }
        });
        SpanGuard {
            active,
            injected_parent: self.inner.is_some().then(|| parent_stat.clone()),
        }
    }

    /// One-shot counter add by name (cold paths; locks the registry).
    pub fn add(&self, name: &str, n: u64) {
        if let Some(r) = &self.inner {
            r.counter_cell(name).fetch_add(n, Ordering::Relaxed);
        }
    }

    /// One-shot histogram record by name (cold paths).
    pub fn record(&self, name: &str, value: u64) {
        if let Some(r) = &self.inner {
            r.histogram_cell(name).record(value);
        }
    }

    /// Append an ordered rollup row (e.g. one per study day): a key
    /// plus labelled integer fields, reported verbatim in arrival order.
    /// With an event sink attached, the row is also streamed as a
    /// `rollup` event the moment it arrives — this is how per-day
    /// rollups become visible at day boundaries instead of only in the
    /// final snapshot.
    pub fn rollup(&self, key: &str, fields: &[(&str, u64)]) {
        if let Some(r) = &self.inner {
            r.rollups.lock().unwrap().push(RollupRow {
                key: key.to_string(),
                fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            });
            if let Some(sink) = &r.events {
                let streamed: Vec<(&str, Field<'_>)> =
                    fields.iter().map(|&(k, v)| (k, Field::U(v))).collect();
                sink.emit("rollup", Some(key), &streamed);
            }
        }
    }

    /// Start a [`Stopwatch`] tied to this handle. The stopwatch reads
    /// the wall clock only when telemetry is enabled, so instrumented
    /// code can time itself without the disabled path ever touching
    /// `std::time` — this (not a raw `Instant::now()`) is the sanctioned
    /// way for non-telemetry crates to measure wall time, and the
    /// workspace `source_lint` enforces it.
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Snapshot everything recorded so far into a [`RunReport`]. A
    /// disabled handle yields an empty (but valid, versioned) report.
    pub fn report(&self) -> RunReport {
        match &self.inner {
            Some(r) => r.snapshot(),
            None => RunReport::default(),
        }
    }
}

/// A wall-clock stopwatch from [`Telemetry::stopwatch`]. Inert (always
/// reads 0) when the owning handle is disabled.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Microseconds elapsed since construction; 0 when telemetry is
    /// disabled.
    pub fn elapsed_us(&self) -> u64 {
        self.0.map_or(0, |t| t.elapsed().as_micros() as u64)
    }
}

/// A pre-resolved counter handle. The disabled variant is a `None` and
/// `add` is a single conditional branch.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Shared histogram state: log2 buckets plus count/sum/min/max, all
/// atomic so recording is lock-free and commutative.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    fn record(&self, value: u64) {
        let idx = bucket_index(value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }
}

/// The log2 bucket a value lands in: 0 for 0, else `ilog2(v) + 1`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i` (the summary's representative
/// value for percentile estimation).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A pre-resolved histogram handle.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    /// Observations recorded so far (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct SpanStat {
    name: String,
    calls: AtomicU64,
    total_ns: AtomicU64,
    child_ns: AtomicU64,
    /// Name of the first span observed enclosing this one (same-thread
    /// nesting or an explicit [`Telemetry::span_under`] attachment).
    /// First enclosure wins, so the tree is stable across runs.
    parent: Mutex<Option<String>>,
}

impl SpanStat {
    fn new(name: &str) -> Self {
        SpanStat {
            name: name.to_string(),
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            child_ns: AtomicU64::new(0),
            parent: Mutex::new(None),
        }
    }

    fn record_parent(&self, parent: &str) {
        let mut slot = self.parent.lock().unwrap();
        if slot.is_none() {
            *slot = Some(parent.to_string());
        }
    }
}

/// A handle to the innermost active span on the thread that captured it
/// (see [`Telemetry::current_span`]). `Send + Sync`: made to cross the
/// boundary into a fan-out worker, where [`Telemetry::span_under`]
/// re-attaches the worker's spans beneath it.
#[derive(Clone, Debug, Default)]
pub struct SpanCtx {
    stat: Option<Arc<SpanStat>>,
}

thread_local! {
    /// Per-thread stack of active spans, used to attribute child time to
    /// the enclosing span for self-time computation. Shared across
    /// `Telemetry` instances on a thread; in practice one registry is
    /// live per pipeline run.
    static SPAN_STACK: RefCell<Vec<Arc<SpanStat>>> = const { RefCell::new(Vec::new()) };
}

struct ActiveSpan {
    stat: Arc<SpanStat>,
    start: Instant,
}

/// RAII guard returned by [`Telemetry::span`]; records elapsed wall time
/// on drop. Guards must drop in LIFO order per thread (the natural
/// scoping); an out-of-order drop only misattributes self-time, it
/// cannot corrupt totals.
#[must_use = "a span guard records time when dropped; binding it to _ ends the span immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    /// Cross-thread parent anchor pushed by [`Telemetry::span_under`];
    /// removed (without timing) when the guard drops.
    injected_parent: Option<Arc<SpanStat>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed = active.start.elapsed().as_nanos() as u64;
        active.stat.calls.fetch_add(1, Ordering::Relaxed);
        active.stat.total_ns.fetch_add(elapsed, Ordering::Relaxed);
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop our own entry (top of stack in well-scoped use).
            if let Some(pos) = stack.iter().rposition(|e| Arc::ptr_eq(e, &active.stat)) {
                stack.remove(pos);
            }
            if let Some(parent) = stack.last() {
                parent.child_ns.fetch_add(elapsed, Ordering::Relaxed);
            }
            // Remove the cross-thread anchor `span_under` planted; it
            // carries no timing of its own on this thread.
            if let Some(anchor) = self.injected_parent.take() {
                if let Some(pos) = stack.iter().rposition(|e| Arc::ptr_eq(e, &anchor)) {
                    stack.remove(pos);
                }
            }
        });
    }
}

#[derive(Debug, Clone)]
struct RollupRow {
    key: String,
    fields: Vec<(String, u64)>,
}

/// The thread-safe metric registry behind an enabled [`Telemetry`].
#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    spans: Mutex<BTreeMap<String, Arc<SpanStat>>>,
    rollups: Mutex<Vec<RollupRow>>,
    /// Optional live event stream; every rollup dual-emits here and
    /// instrumented coordinators push lifecycle events through it.
    events: Option<EventSink>,
}

impl Registry {
    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().unwrap();
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                map.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    fn histogram_cell(&self, name: &str) -> Arc<HistogramCore> {
        let mut map = self.histograms.lock().unwrap();
        match map.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Arc::new(HistogramCore::default());
                map.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    fn span_cell(&self, name: &str) -> Arc<SpanStat> {
        let mut map = self.spans.lock().unwrap();
        match map.get(name) {
            Some(s) => s.clone(),
            None => {
                let s = Arc::new(SpanStat::new(name));
                map.insert(name.to_string(), s.clone());
                s
            }
        }
    }

    fn snapshot(&self) -> RunReport {
        let mut report = RunReport::default();
        for (name, stat) in self.spans.lock().unwrap().iter() {
            let total_ns = stat.total_ns.load(Ordering::Relaxed);
            let child_ns = stat.child_ns.load(Ordering::Relaxed);
            report.spans.push(SpanReport {
                name: name.clone(),
                calls: stat.calls.load(Ordering::Relaxed),
                total_us: total_ns / 1_000,
                self_us: total_ns.saturating_sub(child_ns) / 1_000,
                parent: stat.parent.lock().unwrap().clone(),
            });
        }
        for (name, c) in self.counters.lock().unwrap().iter() {
            report
                .counters
                .push((name.clone(), c.load(Ordering::Relaxed)));
        }
        for (name, h) in self.histograms.lock().unwrap().iter() {
            let count = h.count.load(Ordering::Relaxed);
            let buckets: Vec<(u64, u64)> = h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_upper_bound(i), n))
                })
                .collect();
            report.histograms.push(HistogramReport {
                name: name.clone(),
                count,
                sum: h.sum.load(Ordering::Relaxed),
                min: if count == 0 {
                    0
                } else {
                    h.min.load(Ordering::Relaxed)
                },
                max: h.max.load(Ordering::Relaxed),
                p50: percentile_from_buckets(&buckets, count, 0.50),
                p90: percentile_from_buckets(&buckets, count, 0.90),
                p99: percentile_from_buckets(&buckets, count, 0.99),
                buckets,
            });
        }
        for row in self.rollups.lock().unwrap().iter() {
            report.rollups.push((row.key.clone(), row.fields.clone()));
        }
        report
    }
}

/// Estimate the q-quantile from `(upper_bound, count)` bucket pairs:
/// the upper bound of the first bucket whose cumulative count reaches
/// `q * total` (0 for empty input).
fn percentile_from_buckets(buckets: &[(u64, u64)], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for &(le, n) in buckets {
        cum += n;
        if cum >= rank {
            return le;
        }
    }
    buckets.last().map_or(0, |&(le, _)| le)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert_and_free_of_state() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let c = tel.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let h = tel.histogram("y");
        h.record(9);
        assert_eq!(h.count(), 0);
        {
            let _g = tel.span("z");
        }
        tel.rollup("day", &[("day", 1)]);
        let rep = tel.report();
        assert!(rep.spans.is_empty());
        assert!(rep.counters.is_empty());
        assert!(rep.histograms.is_empty());
        assert!(rep.rollups.is_empty());
    }

    #[test]
    fn stopwatch_is_inert_when_disabled() {
        let sw = Telemetry::disabled().stopwatch();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(sw.elapsed_us(), 0);
        let sw = Telemetry::enabled().stopwatch();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(sw.elapsed_us() >= 1_000);
    }

    #[test]
    fn counters_accumulate_across_handles_and_threads() {
        let tel = Telemetry::enabled();
        let c = tel.counter("pkts");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        // A second resolve of the same name sees the same cell.
        assert_eq!(tel.counter("pkts").get(), 4000);
        tel.add("pkts", 2);
        assert_eq!(tel.report().counter("pkts"), Some(4002));
    }

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_summary_statistics() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("lat");
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let rep = tel.report();
        let hr = rep.histogram("lat").expect("present");
        assert_eq!(hr.count, 6);
        assert_eq!(hr.sum, 1106);
        assert_eq!(hr.min, 0);
        assert_eq!(hr.max, 1000);
        assert_eq!(hr.p50, 3); // 3rd of 6 observations lands in [2,3]
        assert_eq!(hr.p99, 1023);
        let total: u64 = hr.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn span_self_time_excludes_children() {
        let tel = Telemetry::enabled();
        {
            let _outer = tel.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = tel.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(8));
            }
        }
        let rep = tel.report();
        let outer = rep.span("outer").expect("outer recorded");
        let inner = rep.span("inner").expect("inner recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent.as_deref(), Some("outer"));
        assert!(inner.total_us >= 8_000);
        assert!(outer.total_us >= inner.total_us);
        // Outer self-time excludes the inner sleep.
        assert!(outer.self_us < outer.total_us);
        assert!(outer.self_us <= outer.total_us - inner.total_us + 1_000);
    }

    #[test]
    fn spans_on_worker_threads_do_not_nest_under_coordinator() {
        let tel = Telemetry::enabled();
        {
            let _outer = tel.span("coord");
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let tel = tel.clone();
                    s.spawn(move || {
                        let _w = tel.span("worker");
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    });
                }
            });
        }
        let rep = tel.report();
        let worker = rep.span("worker").unwrap();
        assert_eq!(worker.calls, 2);
        // A plain span() on a worker thread starts its own stack: no
        // parent recorded, no time subtracted from the coordinator.
        assert_eq!(worker.parent, None);
        let coord = rep.span("coord").unwrap();
        assert_eq!(coord.self_us, coord.total_us);
    }

    #[test]
    fn span_under_reattaches_worker_spans_across_threads() {
        let tel = Telemetry::enabled();
        {
            let _outer = tel.span("coord");
            let ctx = tel.current_span();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let tel = tel.clone();
                    let ctx = ctx.clone();
                    s.spawn(move || {
                        let _w = tel.span_under("worker", &ctx);
                        std::thread::sleep(std::time::Duration::from_millis(4));
                        // Same-thread children of the worker span nest
                        // under it as usual.
                        let _g = tel.span("worker.child");
                    });
                }
            });
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let rep = tel.report();
        let worker = rep.span("worker").unwrap();
        assert_eq!(worker.calls, 2);
        assert_eq!(worker.parent.as_deref(), Some("coord"));
        assert_eq!(
            rep.span("worker.child").unwrap().parent.as_deref(),
            Some("worker")
        );
        // Worker elapsed IS attributed to the coordinator's child time
        // now, so its self-time is strictly below its wall total.
        let coord = rep.span("coord").unwrap();
        assert_eq!(coord.parent, None);
        assert!(
            coord.self_us < coord.total_us,
            "coord self {} !< total {}",
            coord.self_us,
            coord.total_us
        );
        // The coordinator's own stack is clean: a later span nests
        // under nothing stale.
        let _tail = tel.span("tail");
        drop(_tail);
        assert_eq!(tel.report().span("tail").unwrap().parent, None);
    }

    #[test]
    fn span_under_empty_ctx_and_sequential_path_degrade_gracefully() {
        // Empty context (no active span / disabled telemetry): plain span.
        let tel = Telemetry::enabled();
        {
            let ctx = tel.current_span();
            let _g = tel.span_under("lone", &ctx);
        }
        assert_eq!(tel.report().span("lone").unwrap().parent, None);
        // Disabled handle: everything is a no-op.
        let off = Telemetry::disabled();
        let ctx = off.current_span();
        {
            let _g = off.span_under("x", &ctx);
        }
        assert!(off.report().spans.is_empty());
        // span_under on the thread where the parent is already active
        // (the sequential fan-out path) behaves exactly like nesting.
        let tel = Telemetry::enabled();
        {
            let _outer = tel.span("seq.coord");
            let ctx = tel.current_span();
            {
                let _w = tel.span_under("seq.worker", &ctx);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let rep = tel.report();
        assert_eq!(
            rep.span("seq.worker").unwrap().parent.as_deref(),
            Some("seq.coord")
        );
        let coord = rep.span("seq.coord").unwrap();
        assert!(coord.self_us < coord.total_us);
    }

    #[test]
    fn rollups_preserve_order_and_fields() {
        let tel = Telemetry::enabled();
        tel.rollup("day", &[("day", 0), ("samples", 3)]);
        tel.rollup("day", &[("day", 5), ("samples", 1)]);
        let rep = tel.report();
        assert_eq!(rep.rollups.len(), 2);
        assert_eq!(rep.rollups[0].0, "day");
        assert_eq!(rep.rollups[0].1[0], ("day".to_string(), 0));
        assert_eq!(rep.rollups[1].1[1], ("samples".to_string(), 1));
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile_from_buckets(&[], 0, 0.5), 0);
        assert_eq!(percentile_from_buckets(&[(7, 1)], 1, 0.0), 7);
        assert_eq!(percentile_from_buckets(&[(7, 1)], 1, 1.0), 7);
        let b = [(1, 50), (1023, 50)];
        assert_eq!(percentile_from_buckets(&b, 100, 0.5), 1);
        assert_eq!(percentile_from_buckets(&b, 100, 0.51), 1023);
    }
}
