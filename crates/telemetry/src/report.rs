//! The versioned, machine-readable run report.
//!
//! A [`RunReport`] is a plain-data snapshot of a telemetry registry:
//! span wall-times (total and self), counter values, histogram
//! summaries, and ordered rollup rows. [`RunReport::to_json`] renders
//! the stable on-disk schema (`malnet.run_report` v1) that `par_sweep`
//! and CI write under `results/`; EXPERIMENTS.md documents the format.

use std::fmt::Write as _;

/// Wall-time summary of one named span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanReport {
    /// Span name, e.g. `pipeline.phase_a`.
    pub name: String,
    /// Times the span was entered.
    pub calls: u64,
    /// Total wall microseconds across all calls.
    pub total_us: u64,
    /// Total minus time attributed to child spans (same-thread nesting
    /// plus cross-thread `span_under` attachments).
    pub self_us: u64,
    /// Name of the first span observed enclosing this one; `None` for
    /// roots and spans only ever opened on detached worker threads.
    pub parent: Option<String>,
}

/// Summary of one log2-bucketed histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramReport {
    /// Histogram name, e.g. `sandbox.instructions_per_run`.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median, estimated at bucket granularity (upper bound).
    pub p50: u64,
    /// 90th percentile estimate.
    pub p90: u64,
    /// 99th percentile estimate.
    pub p99: u64,
    /// Non-empty `(inclusive upper bound, count)` buckets, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// The schema identifier embedded in every report.
pub const SCHEMA: &str = "malnet.run_report";
/// The current schema version.
pub const VERSION: u32 = 1;

/// A complete telemetry snapshot. `Default` is the valid empty report a
/// disabled handle produces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Spans in name order.
    pub spans: Vec<SpanReport>,
    /// `(name, value)` counters in name order.
    pub counters: Vec<(String, u64)>,
    /// Histogram summaries in name order.
    pub histograms: Vec<HistogramReport>,
    /// `(key, fields)` rollup rows in arrival order.
    pub rollups: Vec<(String, Vec<(String, u64)>)>,
}

impl RunReport {
    /// Look up a span by name.
    pub fn span(&self, name: &str) -> Option<&SpanReport> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramReport> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serialize to the versioned JSON schema (see EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        let _ = write!(out, "{}:{},", json_str("schema"), json_str(SCHEMA));
        let _ = write!(out, "{}:{},", json_str("version"), VERSION);

        out.push_str("\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"calls\":{},\"total_us\":{},\"self_us\":{}",
                json_str(&s.name),
                s.calls,
                s.total_us,
                s.self_us
            );
            if let Some(p) = &s.parent {
                let _ = write!(out, ",\"parent\":{}", json_str(p));
            }
            out.push('}');
        }
        out.push_str("],");

        out.push_str("\"counters\":[");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":{},\"value\":{}}}", json_str(name), value);
        }
        out.push_str("],");

        out.push_str("\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                json_str(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p90,
                h.p99
            );
            for (j, (le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"le\":{le},\"count\":{n}}}");
            }
            out.push_str("]}");
        }
        out.push_str("],");

        out.push_str("\"rollups\":[");
        for (i, (key, fields)) in self.rollups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"key\":{},\"fields\":{{", json_str(key));
            for (j, (name, value)) in fields.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(name), value);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Parse a report back from its [`RunReport::to_json`] rendering.
    ///
    /// The inverse direction exists so consumers (`study_watch`, the
    /// proptest roundtrip suite) can fold an event stream against a
    /// report file without re-running the study. Counter values and
    /// bucket bounds survive bit-exact up to `u64::MAX` (the parser
    /// keeps plain integers out of `f64`).
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let v = crate::json::parse(text)?;
        if v.get("schema").and_then(crate::json::Value::as_str) != Some(SCHEMA) {
            return Err("wrong or missing schema".to_string());
        }
        if v.get("version").and_then(crate::json::Value::as_u64) != Some(VERSION as u64) {
            return Err("wrong or missing version".to_string());
        }
        let arr = |name: &str| -> Result<&[crate::json::Value], String> {
            v.get(name)
                .and_then(crate::json::Value::as_array)
                .ok_or(format!("missing {name:?} array"))
        };
        let str_of = |v: &crate::json::Value, name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(crate::json::Value::as_str)
                .map(str::to_string)
                .ok_or(format!("missing string {name:?}"))
        };
        let u64_of = |v: &crate::json::Value, name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(crate::json::Value::as_u64)
                .ok_or(format!("missing integer {name:?}"))
        };

        let mut report = RunReport::default();
        for s in arr("spans")? {
            report.spans.push(SpanReport {
                name: str_of(s, "name")?,
                calls: u64_of(s, "calls")?,
                total_us: u64_of(s, "total_us")?,
                self_us: u64_of(s, "self_us")?,
                parent: match s.get("parent") {
                    None => None,
                    Some(p) => Some(
                        p.as_str()
                            .map(str::to_string)
                            .ok_or("non-string \"parent\"")?,
                    ),
                },
            });
        }
        for c in arr("counters")? {
            report
                .counters
                .push((str_of(c, "name")?, u64_of(c, "value")?));
        }
        for h in arr("histograms")? {
            let mut buckets = Vec::new();
            for b in h
                .get("buckets")
                .and_then(crate::json::Value::as_array)
                .ok_or("missing \"buckets\" array")?
            {
                buckets.push((u64_of(b, "le")?, u64_of(b, "count")?));
            }
            report.histograms.push(HistogramReport {
                name: str_of(h, "name")?,
                count: u64_of(h, "count")?,
                sum: u64_of(h, "sum")?,
                min: u64_of(h, "min")?,
                max: u64_of(h, "max")?,
                p50: u64_of(h, "p50")?,
                p90: u64_of(h, "p90")?,
                p99: u64_of(h, "p99")?,
                buckets,
            });
        }
        for r in arr("rollups")? {
            let key = str_of(r, "key")?;
            let Some(crate::json::Value::Obj(members)) = r.get("fields") else {
                return Err("missing \"fields\" object".to_string());
            };
            let mut fields = Vec::with_capacity(members.len());
            for (name, value) in members {
                let n = value
                    .as_u64()
                    .ok_or(format!("rollup field {name:?} is not an integer"))?;
                fields.push((name.clone(), n));
            }
            report.rollups.push((key, fields));
        }
        Ok(report)
    }
}

/// Quote and escape a JSON string (shared with the event stream and
/// trace writers).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_report() -> RunReport {
        RunReport {
            spans: vec![SpanReport {
                name: "pipeline.day".to_string(),
                calls: 3,
                total_us: 1200,
                self_us: 400,
                parent: Some("pipeline.run".to_string()),
            }],
            counters: vec![("netsim.packets_delivered".to_string(), 42)],
            histograms: vec![HistogramReport {
                name: "sandbox.instructions_per_run".to_string(),
                count: 2,
                sum: 12,
                min: 4,
                max: 8,
                p50: 7,
                p90: 15,
                p99: 15,
                buckets: vec![(7, 1), (15, 1)],
            }],
            rollups: vec![(
                "day".to_string(),
                vec![("day".to_string(), 0), ("samples".to_string(), 5)],
            )],
        }
    }

    #[test]
    fn empty_report_is_valid_versioned_json() {
        let v = json::parse(&RunReport::default().to_json()).expect("parses");
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(SCHEMA));
        assert_eq!(v.get("version").and_then(|n| n.as_u64()), Some(1));
        assert_eq!(v.get("spans").and_then(|a| a.as_array()).unwrap().len(), 0);
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let rep = sample_report();
        let v = json::parse(&rep.to_json()).expect("parses");
        let spans = v.get("spans").and_then(|a| a.as_array()).unwrap();
        assert_eq!(
            spans[0].get("name").and_then(|s| s.as_str()),
            Some("pipeline.day")
        );
        assert_eq!(spans[0].get("self_us").and_then(|n| n.as_u64()), Some(400));
        assert_eq!(
            spans[0].get("parent").and_then(|s| s.as_str()),
            Some("pipeline.run")
        );
        let counters = v.get("counters").and_then(|a| a.as_array()).unwrap();
        assert_eq!(counters[0].get("value").and_then(|n| n.as_u64()), Some(42));
        let hists = v.get("histograms").and_then(|a| a.as_array()).unwrap();
        let buckets = hists[0].get("buckets").and_then(|a| a.as_array()).unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[1].get("le").and_then(|n| n.as_u64()), Some(15));
        let rollups = v.get("rollups").and_then(|a| a.as_array()).unwrap();
        let fields = rollups[0].get("fields").unwrap();
        assert_eq!(fields.get("samples").and_then(|n| n.as_u64()), Some(5));
    }

    #[test]
    fn from_json_inverts_to_json() {
        for rep in [sample_report(), RunReport::default()] {
            let back = RunReport::from_json(&rep.to_json()).expect("parses");
            assert_eq!(back, rep);
        }
        // Extreme counter values survive bit-exact.
        let mut rep = RunReport::default();
        rep.counters.push(("big".to_string(), u64::MAX));
        rep.counters.push(("odd".to_string(), (1u64 << 53) + 1));
        assert_eq!(RunReport::from_json(&rep.to_json()).unwrap(), rep);
        // Wrong schema/version are rejected.
        assert!(RunReport::from_json("{\"schema\":\"x\",\"version\":1}").is_err());
        assert!(
            RunReport::from_json(&rep.to_json().replace("\"version\":1", "\"version\":2")).is_err()
        );
    }

    #[test]
    fn lookup_helpers() {
        let rep = sample_report();
        assert_eq!(rep.span("pipeline.day").unwrap().calls, 3);
        assert!(rep.span("missing").is_none());
        assert_eq!(rep.counter("netsim.packets_delivered"), Some(42));
        assert_eq!(rep.counter("missing"), None);
        assert_eq!(
            rep.histogram("sandbox.instructions_per_run").unwrap().max,
            8
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut rep = RunReport::default();
        rep.counters.push(("weird \"name\"\n".to_string(), 1));
        let v = json::parse(&rep.to_json()).expect("parses");
        let counters = v.get("counters").and_then(|a| a.as_array()).unwrap();
        assert_eq!(
            counters[0].get("name").and_then(|s| s.as_str()),
            Some("weird \"name\"\n")
        );
    }
}
