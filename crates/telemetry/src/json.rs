//! A minimal JSON reader for run-report consumers and tests.
//!
//! The offline build has no serde, so report validation (the CI check,
//! the determinism suite, the telemetry tests) uses this small
//! recursive-descent parser. It accepts the full JSON grammar the
//! reports use (objects, arrays, strings with escapes, integer and
//! float numbers, booleans, null) and rejects trailing garbage.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-integral, negative, or out-of-`u64`-range JSON number.
    Num(f64),
    /// A non-negative integer that fits in a `u64`, kept exact. Counter
    /// values and histogram bucket bounds go up to `u64::MAX`, which an
    /// `f64` cannot represent — `RunReport::from_json` and the event-
    /// stream fold need these bit-exact.
    Int(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving member order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number as u64: exact for [`Value::Int`], best-effort for a
    /// non-negative integral [`Value::Num`] (e.g. `1e3`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as f64, if this is a number (lossy above 2^53 for
    /// [`Value::Int`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Reports only emit BMP escapes; surrogate
                            // pairs are rejected rather than mis-decoded.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad \\u escape {code:04x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        // Plain non-negative integers that fit a u64 stay exact; every
        // other shape (negative, fractional, exponent, oversized) takes
        // the f64 path.
        if !text.starts_with('-') && !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
        assert_eq!(parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"c"},[]],"d":{}}"#).unwrap();
        let arr = v.get("a").and_then(|a| a.as_array()).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(|s| s.as_str()), Some("c"));
        assert_eq!(v.get("d"), Some(&Value::Obj(vec![])));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("42 garbage").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(parse("\"héllo ✓\"").unwrap().as_str(), Some("héllo ✓"));
    }

    #[test]
    fn large_integers_stay_exact() {
        // Above 2^53 an f64 cannot hold every integer; the parser must.
        for v in [
            u64::MAX,
            u64::MAX - 1,
            (1u64 << 53) + 1,
            9_007_199_254_740_993,
        ] {
            assert_eq!(parse(&v.to_string()).unwrap(), Value::Int(v));
            assert_eq!(parse(&v.to_string()).unwrap().as_u64(), Some(v));
        }
        // Too big for u64: degrades to the f64 path instead of erroring.
        assert!(matches!(
            parse("18446744073709551616").unwrap(),
            Value::Num(_)
        ));
        // Negative / fractional / exponent forms never claim Int.
        assert!(matches!(parse("-3").unwrap(), Value::Num(_)));
        assert!(matches!(parse("3.0").unwrap(), Value::Num(_)));
        assert!(matches!(parse("1e3").unwrap(), Value::Num(_)));
    }
}
