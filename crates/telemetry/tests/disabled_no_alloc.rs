//! Proof that the disabled telemetry hot path allocates nothing.
//!
//! The DESIGN.md claim (and the `telemetry/counter_add_disabled` bench
//! gate) is that a disabled `Telemetry` makes `add`/`record` close to
//! free: a branch on an `Option` discriminant, no locks, no heap. A
//! sub-10 ns timing alone can't distinguish "no allocation" from "a
//! fast thread-local allocation", so this test counts allocator calls
//! directly with a wrapping global allocator.
//!
//! The crate's `#![forbid(unsafe_code)]` applies to the library only;
//! integration tests are separate crates, so implementing `GlobalAlloc`
//! here (inherently unsafe) is fine.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use malnet_telemetry::Telemetry;

/// Passes everything through to [`System`], counting allocations.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_instruments_do_not_allocate() {
    // Handle creation may allocate (names, Arcs) — that happens once at
    // setup, outside the measured window.
    let tel = Telemetry::disabled();
    let counter = tel.counter("test.counter");
    let histogram = tel.histogram("test.histogram");

    let before = ALLOCS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        counter.add(1);
        histogram.record(i);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled counter/histogram hot path allocated"
    );

    // Spans on a disabled registry must be allocation-free too: the
    // guard is constructed and dropped 1000 times inside the window.
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..1_000 {
        let _g = tel.span("test.span");
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "disabled span guard allocated");
}
