//! Histogram edge cases: the documented log2 bucketing contract
//! (bucket 0 holds the value 0; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`)
//! at its boundaries — 0, 1, exact powers of two, and `u64::MAX` — and
//! lossless JSON rendering of the resulting extreme bucket bounds and
//! sums.

use malnet_telemetry::{
    bucket_index, bucket_upper_bound, json, RunReport, Telemetry, HISTOGRAM_BUCKETS,
};

#[test]
fn zero_and_one_get_their_own_buckets() {
    let tel = Telemetry::enabled();
    let h = tel.histogram("edge");
    h.record(0);
    h.record(1);
    let rep = tel.report();
    let hr = rep.histogram("edge").unwrap();
    // Bucket 0 (upper bound 0) holds the zero; bucket 1 (upper bound 1)
    // holds the one — they never share.
    assert_eq!(hr.buckets, vec![(0, 1), (1, 1)]);
    assert_eq!(hr.min, 0);
    assert_eq!(hr.max, 1);
    assert_eq!(hr.sum, 1);
}

#[test]
fn powers_of_two_open_new_buckets_and_predecessors_close_them() {
    // 2^k is the *first* value of bucket k+1; 2^k - 1 is the *last*
    // value of bucket k. Exercise every boundary the encoding has.
    for k in 0..63u32 {
        let v = 1u64 << k;
        assert_eq!(
            bucket_index(v),
            k as usize + 1,
            "2^{k} opens bucket {}",
            k + 1
        );
        assert_eq!(
            bucket_index(v - 1),
            if v == 1 { 0 } else { k as usize },
            "2^{k}-1 stays in bucket {k}"
        );
        let expected_upper = if k as usize + 1 >= 64 {
            u64::MAX
        } else {
            (1u64 << (k + 1)) - 1
        };
        assert_eq!(bucket_upper_bound(k as usize + 1), expected_upper);
    }
    // The top bucket: 2^63 and everything above, u64::MAX included.
    assert_eq!(bucket_index(1u64 << 63), 64);
    assert_eq!(bucket_index(u64::MAX), 64);
    assert_eq!(bucket_upper_bound(64), u64::MAX);
    assert_eq!(HISTOGRAM_BUCKETS, 65, "documented bucket count");
}

#[test]
fn recorded_boundary_values_land_in_documented_buckets() {
    let tel = Telemetry::enabled();
    let h = tel.histogram("bounds");
    for v in [0u64, 1, 2, 4, 1u64 << 32, 1u64 << 63, u64::MAX] {
        h.record(v);
    }
    let rep = tel.report();
    let hr = rep.histogram("bounds").unwrap();
    assert_eq!(
        hr.buckets,
        vec![
            (0, 1),                // 0
            (1, 1),                // 1
            (3, 1),                // 2
            (7, 1),                // 4
            ((1u64 << 33) - 1, 1), // 2^32
            (u64::MAX, 2),         // 2^63 and u64::MAX share the top
        ]
    );
    assert_eq!(hr.count, 7);
    assert_eq!(hr.min, 0);
    assert_eq!(hr.max, u64::MAX);
    // Sum wraps nothing here: 7 + 2^32 + 2^63 + (2^64 - 1) computed in
    // wrapping u64 arithmetic is what the atomic accumulates.
    let expected_sum = 0u64
        .wrapping_add(1)
        .wrapping_add(2)
        .wrapping_add(4)
        .wrapping_add(1u64 << 32)
        .wrapping_add(1u64 << 63)
        .wrapping_add(u64::MAX);
    assert_eq!(hr.sum, expected_sum);
}

#[test]
fn extreme_buckets_render_losslessly_through_json() {
    let tel = Telemetry::enabled();
    let h = tel.histogram("extreme");
    h.record(u64::MAX);
    h.record(0);
    let report = tel.report();
    let json_text = report.to_json();
    // The raw text must carry the exact integer, not an f64
    // approximation like 1.8446744073709552e19.
    assert!(
        json_text.contains(&u64::MAX.to_string()),
        "u64::MAX not rendered as an exact integer: {json_text}"
    );
    // And it survives a full parse → report → render cycle bit-exact.
    let v = json::parse(&json_text).expect("parses");
    let hists = v.get("histograms").and_then(|a| a.as_array()).unwrap();
    let buckets = hists[0].get("buckets").and_then(|a| a.as_array()).unwrap();
    assert_eq!(
        buckets[1].get("le").and_then(|n| n.as_u64()),
        Some(u64::MAX)
    );
    let back = RunReport::from_json(&json_text).expect("roundtrips");
    assert_eq!(back, report);
    assert_eq!(back.histogram("extreme").unwrap().max, u64::MAX);
}

#[test]
fn percentiles_of_extreme_distributions_stay_in_range() {
    let tel = Telemetry::enabled();
    let h = tel.histogram("p");
    for _ in 0..99 {
        h.record(1);
    }
    h.record(u64::MAX);
    let rep = tel.report();
    let hr = rep.histogram("p").unwrap();
    assert_eq!(hr.p50, 1);
    assert_eq!(hr.p90, 1);
    // The single extreme observation owns the tail estimate.
    assert_eq!(hr.p99, 1);
    assert_eq!(hr.max, u64::MAX);
    assert_eq!(hr.buckets.last(), Some(&(u64::MAX, 1)));
}
