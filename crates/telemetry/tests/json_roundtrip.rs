//! Property test: `RunReport::to_json` → `RunReport::from_json` is the
//! identity on arbitrary reports — including names that need JSON
//! escaping (quotes, backslashes, control characters), counter values
//! up to `u64::MAX` (which must not detour through `f64`), empty
//! sections, and duplicate names (the report model is a list, not a
//! map, and the roundtrip must not dedupe).

use malnet_telemetry::{HistogramReport, RunReport, SpanReport};
use proptest::prelude::*;

/// Names that stress the escaper: ASCII identifiers mixed with quotes,
/// backslashes, tabs, newlines, a control character, and non-ASCII.
fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z.]{0,16}",
        "[a-z\"\\ touché✓\t\n]{1,12}",
        Just("\u{1}\u{1f}weird\r".to_string()),
        Just(String::new()),
    ]
}

/// Values covering the full u64 range plus the f64-dangerous region
/// just above 2^53.
fn arb_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        any::<u64>(),
        Just(0u64),
        Just(u64::MAX),
        Just((1u64 << 53) + 1),
    ]
}

fn arb_span() -> impl Strategy<Value = SpanReport> {
    (
        arb_name(),
        arb_value(),
        arb_value(),
        arb_value(),
        prop_oneof![Just(true), Just(false)],
        arb_name(),
    )
        .prop_map(
            |(name, calls, total_us, self_us, has_parent, parent)| SpanReport {
                name,
                calls,
                total_us,
                self_us,
                parent: has_parent.then_some(parent),
            },
        )
}

fn arb_histogram() -> impl Strategy<Value = HistogramReport> {
    (
        (
            arb_name(),
            arb_value(),
            arb_value(),
            arb_value(),
            arb_value(),
        ),
        (arb_value(), arb_value(), arb_value()),
        prop::collection::vec((arb_value(), arb_value()), 0..5),
    )
        .prop_map(
            |((name, count, sum, min, max), (p50, p90, p99), buckets)| HistogramReport {
                name,
                count,
                sum,
                min,
                max,
                p50,
                p90,
                p99,
                buckets,
            },
        )
}

fn arb_report() -> impl Strategy<Value = RunReport> {
    (
        prop::collection::vec(arb_span(), 0..4),
        prop::collection::vec((arb_name(), arb_value()), 0..6),
        prop::collection::vec(arb_histogram(), 0..3),
        prop::collection::vec(
            (
                arb_name(),
                prop::collection::vec((arb_name(), arb_value()), 0..4),
            ),
            0..4,
        ),
    )
        .prop_map(|(spans, counters, histograms, rollups)| RunReport {
            spans,
            counters,
            histograms,
            rollups,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn to_json_then_from_json_is_identity(report in arb_report()) {
        let json = report.to_json();
        let back = RunReport::from_json(&json).map_err(TestCaseError::fail)?;
        prop_assert_eq!(back, report);
    }

    #[test]
    fn rendered_json_always_parses(report in arb_report()) {
        let json = report.to_json();
        malnet_telemetry::json::parse(&json).map_err(TestCaseError::fail)?;
        // And a second render of the recovered report is byte-identical:
        // the serializer is canonical over its own output.
        let back = RunReport::from_json(&json).map_err(TestCaseError::fail)?;
        prop_assert_eq!(back.to_json(), json);
    }
}
