use std::time::{Duration, Instant};

fn measure() -> Duration {
    let start = Instant::now();
    work();
    start.elapsed()
}

fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    to_micros(t)
}

fn sanctioned() -> Duration {
    // Stopwatch reading handed in by telemetry. lint: clock-ok
    Instant::now().elapsed()
}
