//! Doc comment mentioning Instant::now() — inert.
//! So is `lint: panic-ok` here: doc comments never carry markers.

/// Returns the banner. `v.unwrap()` in docs is inert too.
fn banner() -> &'static str {
    let s = r#"panic!("not real") Instant::now() SystemTime::now()"#;
    /* block comment with HashMap::new()
       /* nested */ still one comment */
    let c = 'h'; // a char literal, not a lifetime
    let _lt: &'static str = "lifetime disambiguation";
    let bytes = b"\x00.expect(";
    let raw = r"HashSet::new() .elapsed()";
    let _ = (c, bytes, raw);
    s
}
