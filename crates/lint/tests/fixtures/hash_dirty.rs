use std::collections::HashMap;

struct Tally {
    counts: HashMap<String, u64>,
}

impl Tally {
    fn dump(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (k, v) in &self.counts {
            out.push(format!("{k}={v}"));
        }
        out
    }

    fn names(&self) -> Vec<&String> {
        self.counts.keys().collect()
    }
}

// Point lookups only, never iterated. lint: hash-ok
fn cache() -> HashMap<u32, u32> {
    HashMap::new()
}
