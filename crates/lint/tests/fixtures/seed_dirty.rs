const DOMAIN_FIXTURE_A: u64 = 0x5eed_00ff_0000_0001;

fn good(seed: u64, day: u32) -> StdRng {
    StdRng::seed_from_u64(sub_seed(seed ^ DOMAIN_FIXTURE_A, day, 0))
}

fn bad_literal() -> StdRng {
    StdRng::seed_from_u64(7)
}

fn bad_inline(seed: u64) -> u64 {
    seed ^ 0x5eed_00ff_0000_0002
}

fn bad_entropy() -> StdRng {
    StdRng::from_entropy()
}
