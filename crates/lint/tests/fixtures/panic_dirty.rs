fn config(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn parse(raw: &str) -> u32 {
    raw.parse()
        .expect("caller validated")
}

fn stub() {
    todo!("wire this up")
}

fn must_fail(r: Result<u32, String>) {
    let _ = r.expect_err("always an error here");
}

fn guarded(v: Option<u32>) -> u32 {
    // Invariant: set by the loader before any call. lint: panic-ok
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        panic!("boom");
    }
}
