// Nothing hashes here any more. lint: hash-ok
fn tidy() -> u32 {
    7
}
