//! Fixture-based self-tests: each deliberately dirty file under
//! `tests/fixtures/` is linted under a scoped pseudo-path and must
//! produce exactly the expected findings — and the real workspace must
//! be clean under the full rule set.
//!
//! The fixtures never compile as part of the workspace (the walker in
//! `collect_rs_files` skips `fixtures/` directories); they are read as
//! text and fed to [`malnet_lint::rules::lint_file`].

use std::path::{Path, PathBuf};

use malnet_lint::rules::{check_domain_uniqueness, lint_file};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

fn rules_of(pseudo_path: &str, name: &str) -> Vec<(&'static str, usize)> {
    lint_file(pseudo_path, &fixture(name))
        .findings
        .iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn clock_fixture_flags_reads_not_duration_imports() {
    // The Duration import and arithmetic never fire; every clock read
    // does; the clock-ok suppression marker silences both reads on its
    // following line.
    let v = rules_of("crates/core/src/clock_dirty.rs", "clock_dirty.rs");
    assert_eq!(v, vec![("clock", 4), ("clock", 6), ("clock", 10)]);
    let lint = lint_file("crates/core/src/clock_dirty.rs", &fixture("clock_dirty.rs"));
    assert_eq!((lint.markers, lint.markers_used), (1, 1));
}

#[test]
fn hash_fixture_distinguishes_declaration_iteration_and_suppression() {
    let v = rules_of("crates/core/src/hash_dirty.rs", "hash_dirty.rs");
    assert_eq!(
        v,
        vec![
            ("hash", 4),       // field declaration
            ("hash-iter", 10), // for-loop over self.counts
            ("hash-iter", 17), // .keys() iteration
            ("hash", 23),      // constructor in unsuppressed position
        ]
    );
}

#[test]
fn hash_fixture_out_of_scope_elsewhere() {
    // Outside the serialization-feeding crates the hash rules are
    // inert — which makes the fixture's hash-ok marker stale, and the
    // audit reports exactly that.
    assert_eq!(
        rules_of("crates/core/tests/hash_dirty.rs", "hash_dirty.rs"),
        vec![("stale-suppression", 21)]
    );
    assert_eq!(
        rules_of("crates/mips/src/hash_dirty.rs", "hash_dirty.rs"),
        vec![("stale-suppression", 21)]
    );
}

#[test]
fn panic_fixture_catches_widened_family_and_multiline_expect() {
    let v = rules_of("crates/wire/src/panic_dirty.rs", "panic_dirty.rs");
    assert_eq!(
        v,
        vec![
            ("panic", 2),  // .unwrap()
            ("panic", 7),  // .expect( on its own physical line
            ("panic", 11), // todo!
            ("panic", 15), // .expect_err(
        ]
    );
    // The marker-suppressed unwrap and the #[cfg(test)] panic! are
    // silent, and the suppression is load-bearing.
    let lint = lint_file("crates/wire/src/panic_dirty.rs", &fixture("panic_dirty.rs"));
    assert_eq!((lint.markers, lint.markers_used), (1, 1));
}

#[test]
fn seed_fixture_flags_entropy_literals_and_inline_domains() {
    let content = fixture("seed_dirty.rs");
    let lint = lint_file("crates/netsim/src/seed_dirty.rs", &content);
    let v: Vec<(&str, usize)> = lint.findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        v,
        vec![
            ("seed", 8),  // seed_from_u64(7): bare literal
            ("seed", 12), // inline 0x5eed_… literal
            ("seed", 16), // from_entropy
        ]
    );
    // The declared constant is collected for the cross-file registry,
    // and the sanctioned derivation through it is not flagged.
    assert_eq!(lint.domains.len(), 1);
    assert_eq!(lint.domains[0].name, "DOMAIN_FIXTURE_A");
    assert_eq!(lint.domains[0].value, 0x5eed_00ff_0000_0001);
}

#[test]
fn duplicate_domains_across_files_are_rejected() {
    let content = fixture("seed_dirty.rs");
    let a = lint_file("crates/netsim/src/seed_a.rs", &content);
    let b = lint_file("crates/sandbox/src/seed_b.rs", &content);
    let mut domains = a.domains;
    domains.extend(b.domains);
    let findings = check_domain_uniqueness(&domains);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "seed");
    assert!(findings[0].message.contains("already declared"));
}

#[test]
fn stale_suppression_fixture_is_itself_an_error() {
    let v = rules_of(
        "crates/core/src/stale_suppression.rs",
        "stale_suppression.rs",
    );
    assert_eq!(v, vec![("stale-suppression", 1)]);
    let lint = lint_file(
        "crates/core/src/stale_suppression.rs",
        &fixture("stale_suppression.rs"),
    );
    assert_eq!((lint.markers, lint.markers_used), (1, 0));
}

#[test]
fn tricky_lexing_fixture_is_clean() {
    // Strings, raw strings, byte strings, char literals, nested block
    // comments and doc comments all contain rule-shaped text; none of
    // it is code, so none of it fires — and the marker-shaped text in
    // the doc comment does not register as a (stale) suppression.
    let lint = lint_file(
        "crates/core/src/clean_tricky.rs",
        &fixture("clean_tricky.rs"),
    );
    assert!(lint.findings.is_empty(), "{:#?}", lint.findings);
    assert_eq!(lint.markers, 0);
}

#[test]
fn workspace_is_clean_under_the_widened_rules() {
    // The real tree must pass its own lint: zero violations, every
    // suppression load-bearing, every seed domain unique.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .expect("workspace root");
    assert!(
        root.join("Cargo.toml").exists(),
        "not the workspace root: {}",
        root.display()
    );
    let lint = malnet_lint::lint_workspace(&root);
    assert!(lint.files_scanned > 0);
    assert!(lint.clean(), "{:#?}", lint.findings);
    assert_eq!(lint.stale_markers(), 0);
    // The domain registry holds the pipeline/prober and chaos families.
    assert!(lint.domains.len() >= 12, "{:#?}", lint.domains);
}

#[test]
fn fixture_corpus_is_excluded_from_workspace_walks() {
    let fixtures: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    assert!(fixtures.is_dir());
    let files = malnet_lint::collect_rs_files(Path::new(env!("CARGO_MANIFEST_DIR")));
    assert!(files.iter().all(|f| !f.starts_with(&fixtures)));
}
