//! The `malnet.lint_report` v1 artifact.
//!
//! Schema (one JSON object):
//!
//! ```json
//! {
//!   "schema": "malnet.lint_report",
//!   "version": 1,
//!   "files_scanned": 123,
//!   "rules": ["clock", "hash", "hash-iter", "panic", "index", "seed",
//!             "stale-suppression"],
//!   "violations": [
//!     {"file": "crates/core/src/x.rs", "line": 7, "rule": "hash",
//!      "message": "..."}
//!   ],
//!   "suppressions": {"total": 9, "used": 9, "stale": 0},
//!   "seed_domains": [
//!     {"name": "DOMAIN_PANIC", "value": "0xc4a0000000000005",
//!      "file": "crates/core/src/chaos.rs", "line": 39}
//!   ],
//!   "clean": true
//! }
//! ```
//!
//! `violations` is sorted by (file, line, rule); `seed_domains` by
//! value, so the registry doubles as human-readable documentation of
//! every sub-seed stream in the workspace. `clean` is exactly
//! `violations.is_empty()` — consumers may gate on either.

use crate::rules::{DomainDecl, Finding, RULES};

/// Artifact schema identifier.
pub const SCHEMA: &str = "malnet.lint_report";
/// Artifact schema version.
pub const VERSION: u32 = 1;

/// Aggregated lint result for a whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceLint {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every seed-domain constant declaration, sorted by value.
    pub domains: Vec<DomainDecl>,
    /// Suppression markers seen.
    pub markers: usize,
    /// Suppression markers that silenced at least one violation.
    pub markers_used: usize,
}

impl WorkspaceLint {
    /// True when no rule fired anywhere.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Stale markers (each also appears as a `stale-suppression`
    /// finding).
    pub fn stale_markers(&self) -> usize {
        self.markers - self.markers_used
    }

    /// Serialize the `malnet.lint_report` v1 artifact.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(out, "{}:{},", jstr("schema"), jstr(SCHEMA));
        let _ = write!(out, "{}:{VERSION},", jstr("version"));
        let _ = write!(out, "{}:{},", jstr("files_scanned"), self.files_scanned);
        let _ = write!(out, "{}:[", jstr("rules"));
        for (i, r) in RULES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&jstr(r));
        }
        let _ = write!(out, "],{}:[", jstr("violations"));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{{}:{},{}:{},{}:{},{}:{}}}",
                jstr("file"),
                jstr(&f.file),
                jstr("line"),
                f.line,
                jstr("rule"),
                jstr(f.rule),
                jstr("message"),
                jstr(&f.message)
            );
        }
        let _ = write!(
            out,
            "],{}:{{{}:{},{}:{},{}:{}}},",
            jstr("suppressions"),
            jstr("total"),
            self.markers,
            jstr("used"),
            self.markers_used,
            jstr("stale"),
            self.stale_markers()
        );
        let _ = write!(out, "{}:[", jstr("seed_domains"));
        for (i, d) in self.domains.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{{}:{},{}:{},{}:{},{}:{}}}",
                jstr("name"),
                jstr(&d.name),
                jstr("value"),
                jstr(&format!("{:#x}", d.value)),
                jstr("file"),
                jstr(&d.file),
                jstr("line"),
                d.line
            );
        }
        let _ = write!(out, "],{}:{}}}", jstr("clean"), self.clean());
        out
    }
}

/// JSON string literal with escaping.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_round_trips_textually() {
        let lint = WorkspaceLint {
            files_scanned: 2,
            findings: vec![Finding {
                file: "crates/core/src/x.rs".to_string(),
                line: 7,
                rule: "hash",
                message: "a \"quoted\" message".to_string(),
            }],
            domains: vec![DomainDecl {
                name: "DOMAIN_TEST".to_string(),
                value: 0x5eed_0000_0000_0009,
                file: "crates/core/src/x.rs".to_string(),
                line: 3,
            }],
            markers: 4,
            markers_used: 3,
        };
        let json = lint.to_json();
        assert!(json.starts_with("{\"schema\":\"malnet.lint_report\",\"version\":1,"));
        assert!(json.contains("\"files_scanned\":2"));
        assert!(json.contains("\"rule\":\"hash\""));
        assert!(json.contains("a \\\"quoted\\\" message"));
        assert!(json.contains("\"value\":\"0x5eed000000000009\""));
        assert!(json.contains("\"suppressions\":{\"total\":4,\"used\":3,\"stale\":1}"));
        assert!(json.contains("\"clean\":false"));
        assert!(!lint.clean());
        assert_eq!(lint.stale_markers(), 1);
    }

    #[test]
    fn empty_report_is_clean() {
        let lint = WorkspaceLint::default();
        let json = lint.to_json();
        assert!(json.contains("\"violations\":[]"));
        assert!(json.contains("\"clean\":true"));
        assert!(lint.clean());
    }
}
