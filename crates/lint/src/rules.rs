//! The rule engine: token-stream determinism/robustness rules with
//! per-crate scopes, same-or-previous-line suppressions, and a stale-
//! suppression audit.
//!
//! Rule catalog (ids as they appear in findings and the JSON report):
//!
//! * `clock` — wall-clock *reads* (`Instant::now`, `SystemTime::now`,
//!   `.elapsed()`) outside `crates/telemetry` and `crates/bench`.
//!   `std::time::Duration` arithmetic is permitted everywhere — only
//!   reading a clock is a hazard, carrying a duration is not. The
//!   exemption re-applies to the telemetry modules that build event-
//!   stream and trace payloads (`events.rs`, `trace.rs`), which must
//!   stay deterministic.
//! * `hash` — a `HashMap`/`HashSet` type or constructor in a crate
//!   that feeds serialized or merged output (core, wire, telemetry,
//!   sandbox, netsim, protocols, intel, botgen). `RandomState` seeds
//!   per process, so iteration order varies *between runs* even with a
//!   fixed simulation seed. Lookup-only maps are fine when justified
//!   with `lint: hash-ok`.
//! * `hash-iter` — an *iteration* over a binding the current file
//!   declares with a hash-collection type (`.iter()`, `.keys()`,
//!   `for _ in &map`, ...). This is the dangerous half the old grep
//!   could not distinguish from lookup; justify only if the result is
//!   sorted (or order-insensitive) before anything observable.
//! * `panic` — panic sites in core/wire production code: `panic!`,
//!   `unreachable!`, `todo!`, `unimplemented!`, `.unwrap()`,
//!   `.expect(`, `.expect_err(`. One crashing sample must degrade into
//!   D-Health, not abort a study. Matched on the token stream, so a
//!   method chain broken across physical lines still trips the rule.
//! * `index` — computed slice indexing in wire decoders
//!   (`data[pos]`, `&data[off..len]` where the bracket contains an
//!   identifier). Fixed literal offsets behind an up-front length
//!   check (`data[4]`) are the decoder idiom and stay legal; computed
//!   offsets are where truncated input panics live.
//! * `seed` — seed-domain discipline: RNG construction outside
//!   `crates/prng` must flow from a caller-provided seed (never a bare
//!   literal), entropy sources (`from_entropy`, `thread_rng`, `OsRng`,
//!   `getrandom`, `RandomState`) are banned outright, and the
//!   `0x5eed_…`/`0xc4a0_…` sub-seed domain families may only appear as
//!   the initializer of a `const DOMAIN_*: u64` declaration — declared
//!   exactly once workspace-wide (checked cross-file).
//! * `stale-suppression` — a `lint: *-ok` marker that no longer
//!   suppresses anything on its own or the following line. Stale
//!   justifications are themselves errors so they cannot rot.
//!
//! Suppression grammar: a regular (non-doc) comment containing
//! `lint: <rule>-ok` on the same line as the violation or the line
//! directly above. Doc comments are inert so documentation may mention
//! the grammar without creating suppressions.
//!
//! Test modules (everything from the first `#[cfg(test)]` to EOF — the
//! workspace convention keeps them at the bottom of each file) are
//! exempt from every rule except the entropy half of `seed`: a test
//! *should* panic on a broken invariant, but nothing may ever draw
//! OS randomness.

use crate::lexer::{int_value, lex, Tok, TokKind};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule id (see module docs).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A `const DOMAIN_*: u64` seed-domain declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainDecl {
    /// Constant name (starts with `DOMAIN_`).
    pub name: String,
    /// Constant value.
    pub value: u64,
    /// Declaring file.
    pub file: String,
    /// 1-indexed line of the declaration.
    pub line: usize,
}

/// Per-file lint result.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Findings, in source order.
    pub findings: Vec<Finding>,
    /// Seed-domain constants declared in this file.
    pub domains: Vec<DomainDecl>,
    /// Suppression markers found.
    pub markers: usize,
    /// Suppression markers that silenced at least one violation.
    pub markers_used: usize,
}

/// Every rule id, for the report's catalog.
pub const RULES: &[&str] = &[
    "clock",
    "hash",
    "hash-iter",
    "panic",
    "index",
    "seed",
    "stale-suppression",
];

const CLOCK_EXEMPT_PREFIXES: &[&str] = &["crates/telemetry/", "crates/bench/"];
/// Files inside a clock-exempt crate where the rule applies anyway:
/// event-stream and trace payloads must be wall-clock-free or streaming
/// would reintroduce the schedule-dependence telemetry is proven not to
/// have. Only caller-supplied stopwatch readings and sequence numbers
/// may appear there.
const CLOCK_REAPPLIED_FILES: &[&str] = &[
    "crates/telemetry/src/events.rs",
    "crates/telemetry/src/trace.rs",
];
/// Crates whose in-memory state feeds serialized or merged output —
/// datasets, reports, event streams, pcaps, world state.
const HASH_SCOPED_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/wire/src/",
    "crates/telemetry/src/",
    "crates/sandbox/src/",
    "crates/netsim/src/",
    "crates/protocols/src/",
    "crates/intel/src/",
    "crates/botgen/src/",
];
const PANIC_SCOPED_PREFIXES: &[&str] = &["crates/core/src/", "crates/wire/src/"];
const INDEX_SCOPED_PREFIXES: &[&str] = &["crates/wire/src/"];
/// The seed rule covers every crate's production sources except the
/// generator itself (which defines construction) and the offline bench
/// harness (whose seeds never feed the simulation's datasets).
const SEED_EXEMPT_PREFIXES: &[&str] = &["crates/prng/", "crates/bench/"];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];
const ENTROPY_IDENTS: &[&str] = &[
    "from_entropy",
    "thread_rng",
    "OsRng",
    "getrandom",
    "RandomState",
];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "expect_err"];

/// The two sub-seed domain literal families (`sub_seed` xor-domains):
/// pipeline/prober streams and chaos fault streams.
fn is_domain_literal(v: u64) -> bool {
    matches!(v >> 48, 0x5eed | 0xc4a0)
}

struct Marker {
    rule: String,
    line: usize,
    used: bool,
}

struct Ctx<'a> {
    path: &'a str,
    toks: &'a [Tok],
    markers: Vec<Marker>,
    findings: Vec<Finding>,
    /// First line of the `#[cfg(test)]` trailer, if any.
    test_line: Option<usize>,
}

impl Ctx<'_> {
    fn in_tests(&self, line: usize) -> bool {
        self.test_line.is_some_and(|t| line >= t)
    }

    /// Emit a finding unless a matching marker on the same or previous
    /// line suppresses it (marking the marker used either way).
    fn emit(&mut self, rule: &'static str, line: usize, message: String) {
        let mut suppressed = false;
        for m in &mut self.markers {
            if m.rule == rule && (m.line == line || m.line + 1 == line) {
                m.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            self.findings.push(Finding {
                file: self.path.to_string(),
                line,
                rule,
                message,
            });
        }
    }

    fn ident(&self, i: usize, text: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
    }

    fn ident_in(&self, i: usize, set: &[&str]) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && set.contains(&t.text.as_str()))
    }

    fn punct(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| {
            t.kind == TokKind::Punct && t.text.len() == 1 && t.text.as_bytes()[0] as char == c
        })
    }
}

/// Lint one file's content. `path` is workspace-relative with forward
/// slashes; it selects which rules apply.
pub fn lint_file(path: &str, src: &str) -> FileLint {
    let lexed = lex(src);
    let markers = collect_markers(&lexed.comments);
    let test_line = find_cfg_test(&lexed.toks);
    let mut ctx = Ctx {
        path,
        toks: &lexed.toks,
        markers,
        findings: Vec::new(),
        test_line,
    };

    let clock_applies = CLOCK_REAPPLIED_FILES.contains(&path)
        || !CLOCK_EXEMPT_PREFIXES.iter().any(|p| path.starts_with(p));
    let hash_applies = HASH_SCOPED_PREFIXES.iter().any(|p| path.starts_with(p));
    let panic_applies = PANIC_SCOPED_PREFIXES.iter().any(|p| path.starts_with(p));
    let index_applies = INDEX_SCOPED_PREFIXES.iter().any(|p| path.starts_with(p));
    let seed_applies = path.starts_with("crates/")
        && path.contains("/src/")
        && !SEED_EXEMPT_PREFIXES.iter().any(|p| path.starts_with(p));

    if clock_applies {
        clock_rule(&mut ctx);
    }
    if hash_applies {
        hash_rules(&mut ctx);
    }
    if panic_applies {
        panic_rule(&mut ctx);
    }
    if index_applies {
        index_rule(&mut ctx);
    }
    let domains = if seed_applies {
        seed_rule(&mut ctx)
    } else {
        Vec::new()
    };

    // Stale-suppression audit: every marker must still be load-bearing.
    let mut findings = ctx.findings;
    let markers_total = ctx.markers.len();
    let mut markers_used = 0;
    for m in &ctx.markers {
        if m.used {
            markers_used += 1;
        } else {
            findings.push(Finding {
                file: path.to_string(),
                line: m.line,
                rule: "stale-suppression",
                message: format!(
                    "`lint: {}-ok` suppresses nothing on this or the next line; \
                     remove it (justifications must not outlive their hazard)",
                    m.rule
                ),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    FileLint {
        findings,
        domains,
        markers: markers_total,
        markers_used,
    }
}

/// Parse `lint: <rule>-ok` markers out of regular (non-doc) comments.
fn collect_markers(comments: &[crate::lexer::Comment]) -> Vec<Marker> {
    let mut out = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(at) = rest.find("lint: ") {
            rest = &rest[at + "lint: ".len()..];
            let word: String = rest
                .chars()
                .take_while(|ch| ch.is_ascii_lowercase() || *ch == '-')
                .collect();
            if let Some(rule) = word.strip_suffix("-ok") {
                if !rule.is_empty() {
                    out.push(Marker {
                        rule: rule.to_string(),
                        line: c.line_end,
                        used: false,
                    });
                }
            }
        }
    }
    out
}

/// Line of the first `#[cfg(test)]` attribute, if any. The workspace
/// convention keeps unit-test modules at the bottom of each file, so
/// everything from here to EOF is test code.
fn find_cfg_test(toks: &[Tok]) -> Option<usize> {
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[")
            && toks.get(i + 2).is_some_and(|t| t.text == "cfg")
            && toks.get(i + 3).is_some_and(|t| t.text == "(")
            && toks.get(i + 4).is_some_and(|t| t.text == "test")
        {
            return Some(toks[i].line);
        }
    }
    None
}

fn clock_rule(ctx: &mut Ctx<'_>) {
    for i in 0..ctx.toks.len() {
        let line = ctx.toks[i].line;
        if ctx.in_tests(line) {
            continue;
        }
        if ctx.ident_in(i, &["Instant", "SystemTime"])
            && ctx.punct(i + 1, ':')
            && ctx.punct(i + 2, ':')
            && ctx.ident(i + 3, "now")
        {
            ctx.emit(
                "clock",
                line,
                format!(
                    "wall-clock read `{}::now` outside crates/telemetry; \
                     use Telemetry::stopwatch (Duration values are fine, clock reads are not)",
                    ctx.toks[i].text
                ),
            );
        }
        if ctx.punct(i, '.') && ctx.ident(i + 1, "elapsed") && ctx.punct(i + 2, '(') {
            ctx.emit(
                "clock",
                ctx.toks[i + 1].line,
                "wall-clock read `.elapsed()` outside crates/telemetry; \
                 use Telemetry::stopwatch"
                    .to_string(),
            );
        }
    }
}

fn hash_rules(ctx: &mut Ctx<'_>) {
    // Pass 1: type/constructor mentions, and the names they bind.
    let mut hash_names: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut in_use = false;
    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.kind == TokKind::Ident && t.text == "use" {
            in_use = true;
        } else if in_use && t.kind == TokKind::Punct && t.text == ";" {
            in_use = false;
        }
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        if let Some(name) = bound_name(ctx.toks, i) {
            // Collected even when suppressed or in a use item: an
            // annotated lookup-only declaration still arms the
            // iteration rule for its binding.
            hash_names.insert(name);
        }
        if in_use || ctx.in_tests(t.line) {
            // Importing a type is not a hazard; iterating it is.
            continue;
        }
        let what = t.text.clone();
        ctx.emit(
            "hash",
            t.line,
            format!(
                "`{what}` in a crate that feeds serialized output: iteration order \
                 varies per process; use a BTree collection, or justify lookup-only \
                 use with `lint: hash-ok`"
            ),
        );
    }

    // Pass 2: iteration over bindings declared hash-typed in this file.
    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.in_tests(t.line) {
            continue;
        }
        // `name.iter()` / `self.name.keys()` / `name.drain(..)` ...
        if hash_names.contains(&t.text)
            && ctx.punct(i + 1, '.')
            && ctx.ident_in(i + 2, ITER_METHODS)
            && ctx.punct(i + 3, '(')
        {
            let method = ctx.toks[i + 2].text.clone();
            ctx.emit(
                "hash-iter",
                ctx.toks[i + 2].line,
                format!(
                    "iteration `.{method}()` over hash-ordered `{}`; order varies per \
                     process — sort before anything observable, use a BTree collection, \
                     or justify with `lint: hash-iter-ok`",
                    t.text
                ),
            );
        }
        // `for x in &name {` / `for (k, v) in &self.name {`
        if t.text == "in" {
            let mut j = i + 1;
            while ctx.punct(j, '&') || ctx.ident(j, "mut") {
                j += 1;
            }
            if ctx.ident(j, "self") && ctx.punct(j + 1, '.') {
                j += 2;
            }
            if ctx
                .toks
                .get(j)
                .is_some_and(|n| n.kind == TokKind::Ident && hash_names.contains(&n.text))
                && ctx.punct(j + 1, '{')
            {
                let name = ctx.toks[j].text.clone();
                ctx.emit(
                    "hash-iter",
                    ctx.toks[j].line,
                    format!(
                        "for-loop over hash-ordered `{name}`; order varies per process — \
                         sort before anything observable, use a BTree collection, or \
                         justify with `lint: hash-iter-ok`"
                    ),
                );
            }
        }
    }
}

/// If the `HashMap`/`HashSet` token at `i` is the type of a field or
/// binding (`name: HashMap<..>`, `let name = HashMap::new()`), return
/// the bound name.
fn bound_name(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i;
    // Walk back over a `std::collections::` path prefix.
    while j >= 2 && toks[j - 1].text == ":" && toks[j - 2].text == ":" {
        j -= 2;
        if j >= 1 && toks[j - 1].kind == TokKind::Ident {
            j -= 1;
        }
    }
    if j == 0 {
        return None;
    }
    let prev = &toks[j - 1];
    // `name: HashMap<...>` (field or annotated let) — a single colon.
    if prev.text == ":" && j >= 2 && toks[j - 2].kind == TokKind::Ident {
        return Some(toks[j - 2].text.clone());
    }
    // `name = HashMap::new()`.
    if prev.text == "=" && j >= 2 && toks[j - 2].kind == TokKind::Ident {
        return Some(toks[j - 2].text.clone());
    }
    None
}

fn panic_rule(ctx: &mut Ctx<'_>) {
    for i in 0..ctx.toks.len() {
        let line = ctx.toks[i].line;
        if ctx.in_tests(line) {
            continue;
        }
        if ctx.ident_in(i, PANIC_MACROS) && ctx.punct(i + 1, '!') {
            ctx.emit(
                "panic",
                line,
                format!(
                    "`{}!` in production code; degrade into D-Health via typed errors / \
                     quarantine, or justify with `lint: panic-ok`",
                    ctx.toks[i].text
                ),
            );
        }
        if ctx.punct(i, '.') && ctx.ident_in(i + 1, PANIC_METHODS) && ctx.punct(i + 2, '(') {
            ctx.emit(
                "panic",
                ctx.toks[i + 1].line,
                format!(
                    "`.{}(...)` in production code; degrade into D-Health via typed \
                     errors / quarantine, or justify with `lint: panic-ok`",
                    ctx.toks[i + 1].text
                ),
            );
        }
    }
}

fn index_rule(ctx: &mut Ctx<'_>) {
    for i in 0..ctx.toks.len() {
        if !ctx.punct(i, '[') || i == 0 {
            continue;
        }
        let line = ctx.toks[i].line;
        if ctx.in_tests(line) {
            continue;
        }
        // Index position: `expr[...]` — the bracket follows a value,
        // not a type/attribute/macro context. Keywords lex as idents but
        // cannot be receivers: `let [a, b] =` is a slice pattern and
        // `pub [u8; 6]` a tuple-struct field, not indexing.
        const NON_RECEIVER_KEYWORDS: &[&str] = &[
            "let", "mut", "ref", "pub", "in", "return", "match", "if", "else", "while", "for",
            "loop", "move", "as", "dyn", "impl", "where", "break", "const", "static", "use", "fn",
            "struct", "enum", "trait", "type", "mod", "unsafe", "box", "yield",
        ];
        let prev = &ctx.toks[i - 1];
        let is_receiver = (matches!(prev.kind, TokKind::Ident | TokKind::Int)
            && !NON_RECEIVER_KEYWORDS.contains(&prev.text.as_str()))
            || prev.text == ")"
            || prev.text == "]";
        if !is_receiver {
            continue;
        }
        // Find the matching `]` and look for identifiers inside:
        // computed indexes/ranges can exceed a truncated buffer.
        let mut depth = 1usize;
        let mut j = i + 1;
        let mut has_ident = false;
        while j < ctx.toks.len() && depth > 0 {
            match ctx.toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {
                    if ctx.toks[j].kind == TokKind::Ident {
                        has_ident = true;
                    }
                }
            }
            j += 1;
        }
        if has_ident {
            ctx.emit(
                "index",
                line,
                "computed slice index in a wire decoder panics on truncated input; \
                 use get()/checked splitting, or justify the bound with `lint: index-ok`"
                    .to_string(),
            );
        }
    }
}

/// The seed-domain rule; returns this file's `const DOMAIN_*`
/// declarations for the workspace-level uniqueness check.
fn seed_rule(ctx: &mut Ctx<'_>) -> Vec<DomainDecl> {
    let mut domains = Vec::new();
    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        let line = t.line;

        // Entropy sources: banned everywhere, tests included — OS
        // randomness breaks reproducibility wherever it runs.
        if ctx.ident_in(i, ENTROPY_IDENTS) {
            ctx.emit(
                "seed",
                line,
                format!(
                    "entropy source `{}`; all randomness must derive from the study \
                     seed via malnet_prng::sub_seed",
                    t.text
                ),
            );
        }
        if ctx.in_tests(line) {
            continue;
        }

        // Literal-seeded RNG construction: `seed_from_u64(<no idents>)`
        // collides across call sites; seeds must flow from a SeedStream
        // derivation (so the argument names at least one value).
        if ctx.ident(i, "seed_from_u64") && ctx.punct(i + 1, '(') {
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut has_ident = false;
            while j < ctx.toks.len() && depth > 0 {
                match ctx.toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {
                        if ctx.toks[j].kind == TokKind::Ident {
                            has_ident = true;
                        }
                    }
                }
                j += 1;
            }
            if !has_ident {
                ctx.emit(
                    "seed",
                    line,
                    "literal-seeded RNG: the seed must flow from a SeedStream domain \
                     derivation (sub_seed / a caller-provided seed), never a bare literal"
                        .to_string(),
                );
            }
        }

        // `const DOMAIN_*: u64 = <lit>;` declarations.
        if ctx.ident(i, "const")
            && ctx
                .toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && n.text.starts_with("DOMAIN_"))
            && ctx.punct(i + 2, ':')
            && ctx.ident(i + 3, "u64")
            && ctx.punct(i + 4, '=')
            && ctx.toks.get(i + 5).is_some_and(|v| v.kind == TokKind::Int)
        {
            if let Some(value) = int_value(&ctx.toks[i + 5].text) {
                domains.push(DomainDecl {
                    name: ctx.toks[i + 1].text.clone(),
                    value,
                    file: ctx.path.to_string(),
                    line,
                });
            }
        }

        // Domain-family literals (`0x5eed_…`, `0xc4a0_…`) outside a
        // `const DOMAIN_*` initializer: inline domains cannot be
        // checked for workspace-wide uniqueness, so they are banned.
        if t.kind == TokKind::Int {
            if let Some(v) = int_value(&t.text) {
                if is_domain_literal(v) {
                    let is_decl_init = i >= 5
                        && ctx.ident(i - 5, "const")
                        && ctx
                            .toks
                            .get(i - 4)
                            .is_some_and(|n| n.text.starts_with("DOMAIN_"))
                        && ctx.punct(i - 3, ':')
                        && ctx.ident(i - 2, "u64")
                        && ctx.punct(i - 1, '=');
                    if !is_decl_init {
                        ctx.emit(
                            "seed",
                            line,
                            format!(
                                "inline seed-domain literal {:#x}; declare it once as \
                                 `const DOMAIN_*: u64` so uniqueness is checkable",
                                v
                            ),
                        );
                    }
                }
            }
        }
    }
    domains
}

/// Cross-file analysis: every seed-domain constant must be declared
/// exactly once workspace-wide — by name *and* by value. Two domains
/// sharing a value silently correlate their random streams; two
/// declarations of one name make the derivation ambiguous.
pub fn check_domain_uniqueness(domains: &[DomainDecl]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut sorted: Vec<&DomainDecl> = domains.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    for (i, d) in sorted.iter().enumerate() {
        for earlier in &sorted[..i] {
            if earlier.name == d.name {
                findings.push(Finding {
                    file: d.file.clone(),
                    line: d.line,
                    rule: "seed",
                    message: format!(
                        "seed domain `{}` already declared at {}:{}; every domain is \
                         declared exactly once workspace-wide",
                        d.name, earlier.file, earlier.line
                    ),
                });
                break;
            }
            if earlier.value == d.value {
                findings.push(Finding {
                    file: d.file.clone(),
                    line: d.line,
                    rule: "seed",
                    message: format!(
                        "seed domain `{}` reuses value {:#x} of `{}` ({}:{}); shared \
                         values correlate supposedly-independent random streams",
                        d.name, d.value, earlier.name, earlier.file, earlier.line
                    ),
                });
                break;
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, src: &str) -> Vec<(&'static str, usize)> {
        lint_file(path, src)
            .findings
            .iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn clock_reads_flagged_duration_arithmetic_permitted() {
        // Satellite fix: the old grep flagged `std::time` anywhere,
        // including harmless Duration imports. The token rule flags
        // only reads.
        let src = "use std::time::Duration;\n\
                   fn f(d: Duration) -> Duration { d + Duration::from_secs(1) }\n\
                   fn g() { let t = std::time::Instant::now(); }\n";
        let v = rules_of("crates/core/src/pipeline.rs", src);
        assert_eq!(v, vec![("clock", 3)]);
    }

    #[test]
    fn elapsed_call_is_a_clock_read() {
        let src = "fn f(t: std::time::Instant) -> u64 { t.elapsed().as_micros() as u64 }\n";
        assert_eq!(rules_of("crates/core/src/eval.rs", src), vec![("clock", 1)]);
        // A field named elapsed is not a call.
        let src2 = "struct S { elapsed: u64 }\nfn f(s: &S) -> u64 { s.elapsed }\n";
        assert!(rules_of("crates/core/src/eval.rs", src2).is_empty());
    }

    #[test]
    fn clocks_allowed_in_telemetry_and_bench_but_reapplied_to_payload_modules() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(rules_of("crates/telemetry/src/lib.rs", src).is_empty());
        assert!(rules_of("crates/bench/benches/components.rs", src).is_empty());
        assert_eq!(
            rules_of("crates/telemetry/src/events.rs", src),
            vec![("clock", 1)]
        );
        assert_eq!(
            rules_of("crates/telemetry/src/trace.rs", src),
            vec![("clock", 1)]
        );
    }

    #[test]
    fn strings_and_comments_no_longer_false_positive() {
        // The false-positive classes the grep could not avoid.
        let src = "// Instant::now() would be bad here\n\
                   fn f() -> &'static str { \"Instant::now()\" }\n\
                   fn g() -> &'static str { \"HashMap::new()\" }\n\
                   fn h() -> &'static str { \".unwrap()\" }\n";
        assert!(rules_of("crates/core/src/pipeline.rs", src).is_empty());
    }

    #[test]
    fn hash_mention_flagged_and_marker_clears_it() {
        let bad = "fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
        let v = rules_of("crates/core/src/c2detect.rs", bad);
        assert_eq!(v, vec![("hash", 2), ("hash", 2)]); // type + constructor
        let marked =
            "fn f() {\n    // lookup only. lint: hash-ok\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
        assert!(rules_of("crates/core/src/c2detect.rs", marked).is_empty());
    }

    #[test]
    fn hash_scope_covers_serializing_crates_and_skips_use_and_tests() {
        let src = "let m = HashMap::new();\n";
        for path in [
            "crates/sandbox/src/process.rs",
            "crates/netsim/src/stack.rs",
            "crates/botgen/src/world.rs",
            "crates/intel/src/feeds.rs",
            "crates/telemetry/src/lib.rs",
            "crates/protocols/src/lib.rs",
        ] {
            assert_eq!(rules_of(path, src).len(), 1, "{path}");
        }
        // Out of scope: non-serializing crates, tests dirs, the lint itself.
        assert!(rules_of("crates/mips/src/block.rs", src).is_empty());
        assert!(rules_of("crates/core/tests/determinism.rs", src).is_empty());
        assert!(rules_of("crates/lint/src/rules.rs", src).is_empty());
        // Imports and test modules are fine.
        let imp = "use std::collections::HashMap;\n#[cfg(test)]\nmod t { fn f() { let m: HashMap<u32,u32> = HashMap::new(); } }\n";
        assert!(rules_of("crates/wire/src/dns.rs", imp).is_empty());
    }

    #[test]
    fn hash_iteration_distinguished_from_lookup() {
        let src = "struct S { m: HashMap<u32, u32> } // lookup index. lint: hash-ok\n\
                   impl S {\n\
                       fn get(&self, k: u32) -> Option<&u32> { self.m.get(&k) }\n\
                       fn all(&self) -> Vec<u32> { self.m.keys().copied().collect() }\n\
                   }\n";
        // Lookup via .get is silent; .keys() iteration fires even though
        // the declaration itself is annotated lookup-only.
        let v = rules_of("crates/core/src/c2detect.rs", src);
        assert_eq!(v, vec![("hash-iter", 4)]);
    }

    #[test]
    fn hash_for_loop_iteration_fires() {
        let src = "struct S { m: HashMap<u32, u32> } // counts. lint: hash-ok\n\
                   impl S {\n\
                       fn dump(&self) { for kv in &self.m { let _ = kv; } }\n\
                   }\n";
        assert_eq!(
            rules_of("crates/core/src/c2detect.rs", src),
            vec![("hash-iter", 3)]
        );
    }

    #[test]
    fn panic_family_is_caught_and_marker_clears_it() {
        let bad = "fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n\
                   fn g() { unreachable!() }\n\
                   fn h() { todo!() }\n\
                   fn i() { unimplemented!() }\n\
                   fn j(r: Result<u32, u32>) -> u32 { r.expect_err(\"x\") }\n";
        let v = rules_of("crates/core/src/pipeline.rs", bad);
        assert_eq!(
            v,
            vec![
                ("panic", 2),
                ("panic", 4),
                ("panic", 5),
                ("panic", 6),
                ("panic", 7)
            ]
        );
        let marked =
            "fn f(v: Option<u32>) -> u32 {\n    // set above. lint: panic-ok\n    v.unwrap()\n}\n";
        assert!(rules_of("crates/core/src/pipeline.rs", marked).is_empty());
    }

    #[test]
    fn panic_match_spans_physical_lines() {
        // Satellite fix: the grep was line-based, so a method chain
        // broken before `.expect(` escaped it.
        let src = "fn f(v: Vec<Result<u32, String>>) -> Vec<u32> {\n\
                       v.into_iter()\n\
                        .collect::<Result<Vec<_>, _>>()\n\
                        .expect(\"all ok\")\n\
                   }\n";
        assert_eq!(rules_of("crates/wire/src/dns.rs", src), vec![("panic", 4)]);
    }

    #[test]
    fn panic_rule_skips_test_modules() {
        let src = "fn prod(v: Option<u32>) -> u32 {\n    v.expect(\"set\")\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { panic!(\"boom\") }\n}\n";
        assert_eq!(rules_of("crates/wire/src/dns.rs", src), vec![("panic", 2)]);
        assert!(rules_of("crates/sandbox/src/emu.rs", src).is_empty());
    }

    #[test]
    fn computed_wire_index_flagged_fixed_offsets_allowed() {
        let src = "fn decode(data: &[u8], len: usize) -> (u8, &[u8]) {\n\
                       let b = data[0];\n\
                       let rest = &data[4..len];\n\
                       (b, rest)\n\
                   }\n";
        assert_eq!(rules_of("crates/wire/src/udp.rs", src), vec![("index", 3)]);
        // Out of scope everywhere else.
        assert!(rules_of("crates/core/src/pipeline.rs", src).is_empty());
        // Attributes, types and macros are not index expressions.
        let benign = "#[derive(Debug)]\nstruct S([u8; 4]);\nfn f() -> Vec<u8> { vec![0u8; 4] }\n";
        assert!(rules_of("crates/wire/src/udp.rs", benign).is_empty());
        // Keywords before `[` are not receivers: slice patterns and
        // tuple-struct array fields must not trip the rule.
        let patterns = "pub struct MacAddr(pub [u8; 6]);\n\
                        fn g(c: &[u8]) {\n\
                            if let [last] = c {\n\
                                let _ = last;\n\
                            }\n\
                            for [a, b] in [[1, 2]] {\n\
                                let _ = a + b;\n\
                            }\n\
                        }\n";
        assert!(rules_of("crates/wire/src/mac.rs", patterns).is_empty());
    }

    #[test]
    fn literal_seeded_rng_flagged_derived_seed_allowed() {
        let bad = "fn f() -> StdRng { StdRng::seed_from_u64(42) }\n";
        assert_eq!(rules_of("crates/netsim/src/net.rs", bad), vec![("seed", 1)]);
        let good = "fn f(seed: u64) -> StdRng { StdRng::seed_from_u64(seed ^ 0x6d61) }\n";
        assert!(rules_of("crates/netsim/src/net.rs", good).is_empty());
        // prng itself and test modules stay free.
        assert!(rules_of("crates/prng/src/lib.rs", bad).is_empty());
        let in_test = format!("#[cfg(test)]\nmod t {{ {bad} }}\n");
        assert!(rules_of("crates/netsim/src/net.rs", &in_test).is_empty());
    }

    #[test]
    fn entropy_sources_banned_even_in_tests() {
        let src = "#[cfg(test)]\nmod t { fn f() { let r = StdRng::from_entropy(); } }\n";
        assert_eq!(
            rules_of("crates/core/src/pipeline.rs", src),
            vec![("seed", 2)]
        );
    }

    #[test]
    fn inline_domain_literal_flagged_const_decl_collected() {
        let bad = "fn f(seed: u64) -> u64 { seed ^ 0x5eed_0000_0000_0009 }\n";
        assert_eq!(
            rules_of("crates/core/src/prober.rs", bad),
            vec![("seed", 1)]
        );
        let good = "/// Stream domain.\nconst DOMAIN_TEST: u64 = 0x5eed_0000_0000_0009;\n\
                    fn f(seed: u64) -> u64 { seed ^ DOMAIN_TEST }\n";
        let lint = lint_file("crates/core/src/prober.rs", good);
        assert!(lint.findings.is_empty(), "{:?}", lint.findings);
        assert_eq!(lint.domains.len(), 1);
        assert_eq!(lint.domains[0].name, "DOMAIN_TEST");
        assert_eq!(lint.domains[0].value, 0x5eed_0000_0000_0009);
    }

    #[test]
    fn domain_uniqueness_is_cross_file() {
        let a = lint_file(
            "crates/core/src/a.rs",
            "const DOMAIN_A: u64 = 0x5eed_0000_0000_0001;\n",
        );
        let b = lint_file(
            "crates/core/src/b.rs",
            "const DOMAIN_B: u64 = 0x5eed_0000_0000_0001;\n\
             const DOMAIN_A: u64 = 0x5eed_0000_0000_0002;\n",
        );
        let mut domains = a.domains;
        domains.extend(b.domains);
        let findings = check_domain_uniqueness(&domains);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("reuses value")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("already declared")));
    }

    #[test]
    fn stale_suppression_is_itself_an_error() {
        let src = "fn f() -> u32 {\n    // historical: lint: panic-ok\n    1\n}\n";
        let v = rules_of("crates/core/src/pipeline.rs", src);
        assert_eq!(v, vec![("stale-suppression", 2)]);
        // Doc comments mentioning the grammar are inert.
        let doc = "/// Annotate with `lint: panic-ok` and a reason.\nfn f() -> u32 { 1 }\n";
        assert!(rules_of("crates/core/src/pipeline.rs", doc).is_empty());
    }

    #[test]
    fn marker_counts_are_reported() {
        let src = "fn f(v: Option<u32>) -> u32 {\n\
                       v.unwrap() // invariant: set in new(). lint: panic-ok\n\
                   }\n\
                   // dead marker: lint: hash-ok\n";
        let lint = lint_file("crates/core/src/pipeline.rs", src);
        assert_eq!(lint.markers, 2);
        assert_eq!(lint.markers_used, 1);
        assert_eq!(lint.findings.len(), 1);
        assert_eq!(lint.findings[0].rule, "stale-suppression");
    }
}
