//! A small Rust lexer, just deep enough for lint rules.
//!
//! The grep lint this crate replaces could not tell an identifier from
//! the same characters inside a string literal, a comment, or a doc
//! example. This lexer can: it splits source text into identifier,
//! literal and punctuation tokens, and collects comments separately so
//! suppression markers can be read from them (and *only* from them).
//!
//! Coverage, deliberately less than a full rustc lexer but enough for
//! every construct in this workspace:
//!
//! * line comments (`//`, `///`, `//!`) and block comments (`/* */`,
//!   `/** */`, `/*! */`) with arbitrary nesting;
//! * string literals with escapes, byte strings (`b"..."`), raw strings
//!   (`r"..."`, `r#"..."#`, any number of hashes) and raw byte strings
//!   (`br#"..."#`), C strings (`c"..."`);
//! * char and byte-char literals (`'a'`, `b'\n'`) distinguished from
//!   lifetimes (`'a` in `&'a str`);
//! * integer literals in every radix with `_` separators and type
//!   suffixes (floats come out as adjacent int/punct tokens, which is
//!   fine — no rule inspects floats);
//! * raw identifiers (`r#match` lexes as the identifier `match`).
//!
//! Every token carries the 1-indexed line of its first character, so a
//! construct broken across physical lines (a method chain ending in
//! `.expect(...)`, say) is still one token sequence to the rules.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `use`, `const`, ...).
    Ident,
    /// An integer literal (`42`, `0x5eed_0000_0000_0001u64`).
    Int,
    /// A string literal of any flavor; `text` is the unquoted body.
    Str,
    /// A char or byte-char literal; `text` is the body between quotes.
    Char,
    /// A lifetime (`'a`, `'static`); `text` excludes the quote.
    Lifetime,
    /// A single punctuation character (`.`, `:`, `[`, `!`, ...).
    Punct,
}

/// One token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what each kind stores).
    pub text: String,
    /// 1-indexed line of the token's first character.
    pub line: usize,
}

/// One comment (line or block), kept out of the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-indexed line on which the comment *ends* — the line a
    /// same-or-previous-line suppression marker is anchored to.
    pub line_end: usize,
    /// True for doc comments (`///`, `//!`, `/** */`, `/*! */`).
    /// Suppression markers are only honored in regular comments, so
    /// documentation that *mentions* the marker grammar is inert.
    pub doc: bool,
}

/// A lexed file: code tokens plus comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lex `src`. Never fails: unterminated constructs consume to EOF,
/// which is the most useful behavior for linting possibly-broken input.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Lexed,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek_at(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek_at(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string(0);
            } else if c == '\'' {
                self.quote();
            } else if is_ident_start(c) {
                self.ident_or_prefixed();
            } else if c.is_ascii_digit() {
                self.number();
            } else {
                let line = self.line;
                self.bump();
                self.push(TokKind::Punct, c.to_string(), line);
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn line_comment(&mut self) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // `//!` and `///` are docs; `////...` (a rule-off line) is not.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        self.out.comments.push(Comment {
            text,
            line_end: self.line,
            doc,
        });
    }

    fn block_comment(&mut self) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            if c == '/' && self.peek_at(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek_at(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        let doc = (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
            || text.starts_with("/*!");
        self.out.comments.push(Comment {
            text,
            line_end: self.line,
            doc,
        });
    }

    /// A string body starting at the opening quote, with `hashes` raw
    /// delimiter hashes (0 for a normal escaped string).
    fn string(&mut self, hashes: usize) {
        let line = self.line;
        self.bump(); // opening quote
        let mut body = String::new();
        while let Some(c) = self.peek() {
            if hashes == 0 && c == '\\' {
                body.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    body.push(e);
                }
            } else if c == '"' {
                if hashes == 0 {
                    self.bump();
                    break;
                }
                // Raw string: closing quote must be followed by the
                // same number of hashes.
                let closes = (1..=hashes).all(|i| self.peek_at(i) == Some('#'));
                if closes {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    break;
                }
                body.push(c);
                self.bump();
            } else {
                body.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Str, body, line);
    }

    /// `'` — a char literal or a lifetime.
    fn quote(&mut self) {
        let line = self.line;
        // Char literal iff an escape follows, or a single char followed
        // by a closing quote. Everything else (`'a` in `<'a>`,
        // `'static`) is a lifetime.
        if self.peek_at(1) == Some('\\')
            || (self.peek_at(2) == Some('\'') && self.peek_at(1) != Some('\''))
        {
            self.bump(); // '
            let mut body = String::new();
            if self.peek() == Some('\\') {
                body.push('\\');
                self.bump();
                if let Some(e) = self.bump() {
                    body.push(e);
                }
            } else if let Some(c) = self.bump() {
                body.push(c);
            }
            if self.peek() == Some('\'') {
                self.bump();
            }
            self.push(TokKind::Char, body, line);
        } else {
            self.bump(); // '
            let mut name = String::new();
            while let Some(c) = self.peek() {
                if is_ident_continue(c) {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, name, line);
        }
    }

    /// An identifier — possibly a string/char prefix (`r"`, `b"`, `br#"`,
    /// `b'`) or a raw identifier (`r#name`).
    fn ident_or_prefixed(&mut self) {
        let line = self.line;
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let is_str_prefix = matches!(name.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
        match self.peek() {
            Some('"') if is_str_prefix => self.string(0),
            Some('\'') if name == "b" => self.quote(),
            Some('#') if is_str_prefix || name == "r" => {
                // Count hashes; `r#"..."#` is a raw string, `r#name` a
                // raw identifier.
                let mut hashes = 0usize;
                while self.peek_at(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek_at(hashes) == Some('"') {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.string(hashes);
                } else if hashes == 1 && name == "r" && self.peek_at(1).is_some_and(is_ident_start)
                {
                    self.bump(); // #
                    let mut raw = String::new();
                    while let Some(c) = self.peek() {
                        if is_ident_continue(c) {
                            raw.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Ident, raw, line);
                } else {
                    self.push(TokKind::Ident, name, line);
                }
            }
            _ => self.push(TokKind::Ident, name, line),
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // A float like `1.5` — but not `0..n` (range) or
                // `1.max(2)` (method call on a literal).
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Int, text, line);
    }
}

/// Parse an integer literal token's numeric value, tolerating `_`
/// separators, any radix prefix and a trailing type suffix. Returns
/// `None` for floats and out-of-range values.
pub fn int_value(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    if t.contains('.') {
        return None;
    }
    let (radix, digits) = match t.as_bytes() {
        [b'0', b'x' | b'X', rest @ ..] => (16, rest),
        [b'0', b'o' | b'O', rest @ ..] => (8, rest),
        [b'0', b'b' | b'B', rest @ ..] => (2, rest),
        _ => (10, t.as_bytes()),
    };
    // Stop at the type suffix (`u64`, `i32`, `usize`...).
    let end = digits
        .iter()
        .position(|&b| !(b as char).is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    let body = std::str::from_utf8(&digits[..end]).ok()?;
    u64::from_str_radix(body, radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"HashMap " quoted"#;
            let b = b"HashMap";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' } let q = '\\''; let b = b'\\n';";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 3, "{:?}", lexed.toks);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"x\ny\";\nlet b = 1;\n/* c\nd */\nlet e = 2;";
        let lexed = lex(src);
        let b = lexed.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
        let e = lexed.toks.iter().find(|t| t.text == "e").unwrap();
        assert_eq!(e.line, 6);
        // The block comment ends on line 5.
        assert_eq!(lexed.comments.last().unwrap().line_end, 5);
    }

    #[test]
    fn doc_comments_are_flagged() {
        let lexed = lex("/// doc\n//! inner\n// plain\n//// rule\n/** block doc */\n/* plain */");
        let docs: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, true, false, false, true, false]);
    }

    #[test]
    fn raw_identifiers_and_hash_strings() {
        let ids = idents("let r#match = 1; let s = r##\"two \"# hashes\"##; after();");
        assert!(ids.contains(&"match".to_string()));
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"hashes".to_string()));
    }

    #[test]
    fn int_values_parse_all_radixes() {
        assert_eq!(
            int_value("0x5eed_0000_0000_0001"),
            Some(0x5eed_0000_0000_0001)
        );
        assert_eq!(
            int_value("0xc4a0_0000_0000_0003u64"),
            Some(0xc4a0_0000_0000_0003)
        );
        assert_eq!(int_value("42"), Some(42));
        assert_eq!(int_value("0b1010"), Some(10));
        assert_eq!(int_value("1_000_000usize"), Some(1_000_000));
        assert_eq!(int_value("1.5"), None);
    }

    #[test]
    fn method_chain_across_lines_is_contiguous_tokens() {
        let src = "value\n    .collect::<Vec<_>>()\n    .expect(\"boom\");";
        let lexed = lex(src);
        let expect = lexed.toks.iter().find(|t| t.text == "expect").unwrap();
        assert_eq!(expect.line, 3);
        // The token before `expect` is the `.` — chains are seamless.
        let i = lexed.toks.iter().position(|t| t.text == "expect").unwrap();
        assert_eq!(lexed.toks[i - 1].text, ".");
    }
}
