//! `malnet-lint`: token-aware determinism and robustness analysis for
//! the MalNet workspace.
//!
//! The reproduction's core invariant — byte-identical datasets across
//! parallelism levels, chaos seeds, telemetry modes *and processes* —
//! is guarded here. Earlier PRs enforced it with a line-based substring
//! grep (`source_lint`), which could not see strings, comments, scopes,
//! or cross-file facts; this crate replaces that with a real lexer
//! ([`lexer`]) feeding a rule engine ([`rules`]) and a versioned
//! machine-readable artifact ([`report`], `malnet.lint_report` v1).
//!
//! Entry points:
//!
//! * [`rules::lint_file`] — pure lint over one file's content;
//! * [`lint_workspace`] — walk a tree, lint every `.rs` file, run the
//!   cross-file seed-domain uniqueness check, aggregate;
//! * [`report::WorkspaceLint::to_json`] — the CI artifact.
//!
//! The crate is dependency-free (it lints the tree that builds it, so
//! it must not drag anything in) and is driven by two `malnet-bench`
//! bins: `lint_report` (CI gate + artifact) and `source_lint` (the
//! original bin, now a thin alias kept for muscle memory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

pub use report::WorkspaceLint;
pub use rules::{Finding, RULES};

/// Collect every `.rs` file under `root`, skipping `target/`, hidden
/// directories, and `fixtures/` directories (the lint's own test corpus
/// of deliberately dirty files). Returned paths are sorted for stable
/// output.
pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Lint a whole workspace rooted at `root`: every `.rs` file plus the
/// cross-file seed-domain uniqueness check.
pub fn lint_workspace(root: &Path) -> WorkspaceLint {
    let files = collect_rs_files(root);
    let mut agg = WorkspaceLint {
        files_scanned: files.len(),
        ..WorkspaceLint::default()
    };
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(content) = std::fs::read_to_string(file) else {
            continue;
        };
        let lint = rules::lint_file(&rel, &content);
        agg.findings.extend(lint.findings);
        agg.domains.extend(lint.domains);
        agg.markers += lint.markers;
        agg.markers_used += lint.markers_used;
    }
    agg.findings
        .extend(rules::check_domain_uniqueness(&agg.domains));
    agg.findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    agg.domains.sort_by_key(|d| d.value);
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_directories_are_not_scanned() {
        // The test corpus under crates/lint/tests/fixtures/ is
        // deliberately dirty; the walker must never feed it to the
        // workspace lint.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = collect_rs_files(root);
        assert!(!files.is_empty());
        assert!(
            files
                .iter()
                .all(|f| f.components().all(|c| c.as_os_str() != "fixtures")),
            "fixtures leaked into the scan set"
        );
    }
}
