//! # malnet-intel — threat-intelligence feed simulation
//!
//! The paper measures the *effectiveness of threat intelligence* (§3.3):
//! it queries VirusTotal's 89 vendor feeds twice per C2 address (on the
//! discovery day and months later) and quantifies same-day misses
//! (Table 3), per-vendor coverage (Table 7, Appendix D) and per-C2
//! vendor counts (Figure 7). It also uses AV-engine corroboration (≥ 5
//! engines) and YARA/AVClass2 labels to vet the corpus (§2.2).
//!
//! This crate substitutes the VT API with calibrated models:
//!
//! * [`feeds`] — the vendor universe (89 feeds, 44 of which ever flag an
//!   IoT C2), per-vendor coverage thresholds, and per-address reporting
//!   lags. The pipeline queries it exactly like VT: "is this address
//!   flagged malicious on day D, and by whom?".
//! * [`labeling`] — YARA-style family rules over binary bytes and an
//!   AVClass2 mock that reproduces the paper's observed quirk (Mozi
//!   samples mislabeled as Mirai).
//! * [`engines`] — AV detection-count model for the ≥ 5-engine
//!   corroboration rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engines;
pub mod feeds;
pub mod labeling;

pub use feeds::{FeedParams, VendorDb, Verdict};
pub use labeling::{avclass2_label, yara_label};
