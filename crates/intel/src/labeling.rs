//! Family labeling: YARA-style rules over binary bytes and an AVClass2
//! mock with the paper's observed failure mode.
//!
//! §2.2: "We use crowd-sourced YARA rules ... in addition to AVClass2 to
//! identify the malware family labels. Note that AVClass2 seems to be
//! often unreliable for MIPS binaries. For example, all the instances of
//! the Mozi family ... are wrongly classified as Mirai."

/// YARA-style rules: substring signatures over the raw file bytes, like
/// the crowd-sourced rules keying on banner strings and protocol
/// constants.
const YARA_RULES: [(&str, &[&[u8]]); 7] = [
    ("gafgyt", &[b"BUILD GAFGYT"]),
    ("daddyl33t", &[b"l33t ", b".hydrasyn"]),
    ("tsunami", &[b"NICK ", b"USER "]),
    ("mozi", &[b"Mozi.m"]),
    ("hajime", &[b"hajime"]),
    ("vpnfilter", &[b"vpnfilter", b"/update/check"]),
    ("mirai", &[b"/bin/busybox MIRAI", b"TSource Engine Query"]),
];

fn contains(hay: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && hay.windows(needle.len()).any(|w| w == needle)
}

/// Match the YARA-style rule set against raw binary bytes. Rules are
/// tried in specificity order; the first family with any matching
/// signature wins. Returns `None` for unlabeled binaries.
pub fn yara_label(binary: &[u8]) -> Option<&'static str> {
    for (family, sigs) in YARA_RULES {
        if sigs.iter().any(|s| contains(binary, s)) {
            return Some(family);
        }
    }
    None
}

/// AVClass2 mock: starts from the YARA ground truth but reproduces the
/// paper's MIPS quirk — P2P families collapse to "mirai".
pub fn avclass2_label(binary: &[u8]) -> Option<&'static str> {
    match yara_label(binary) {
        Some("mozi") | Some("hajime") => Some("mirai"),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yara_rules_distinguish_families() {
        assert_eq!(yara_label(b"...BUILD GAFGYT mips..."), Some("gafgyt"));
        assert_eq!(yara_label(b"xx l33t 00001234"), Some("daddyl33t"));
        assert_eq!(yara_label(b"NICK botxyz\r\n"), Some("tsunami"));
        assert_eq!(yara_label(b"--Mozi.m--"), Some("mozi"));
        assert_eq!(yara_label(b"/bin/busybox MIRAI"), Some("mirai"));
        assert_eq!(yara_label(b"benign data"), None);
    }

    #[test]
    fn avclass2_mislabels_p2p_as_mirai() {
        assert_eq!(avclass2_label(b"--Mozi.m--"), Some("mirai"));
        assert_eq!(avclass2_label(b"...hajime..."), Some("mirai"));
        assert_eq!(avclass2_label(b"BUILD GAFGYT"), Some("gafgyt"));
    }

    #[test]
    fn specificity_order_prevents_vse_shadowing() {
        // A Gafgyt sample may embed the VSE probe string (one Gafgyt VSE
        // attack appears in the paper); the login string must win.
        let bin = b"BUILD GAFGYT mips ... TSource Engine Query";
        assert_eq!(yara_label(bin), Some("gafgyt"));
    }
}
