//! AV-engine corroboration model.
//!
//! The corpus-vetting rule (§2.2) requires ≥ 5 of the ~75 AV engines to
//! flag a file as malware. Real IoT malware is detected broadly but not
//! unanimously; the model draws a per-sample engine count with a small
//! chance of a low-consensus file (which the pipeline then drops,
//! exercising the filter).

use malnet_prng::rngs::StdRng;
use malnet_prng::{Rng, SeedableRng};

/// Engines on the scanning service (paper: 75 as of Aug 2022).
pub const TOTAL_ENGINES: usize = 75;

/// Per-sample AV consensus model.
#[derive(Debug)]
pub struct EngineModel {
    rng: StdRng,
    /// Fraction of genuinely-malicious files that still fall below the
    /// 5-engine bar (fresh packers, rare families).
    pub low_consensus_rate: f64,
}

impl EngineModel {
    /// Default model: ~2% of real malware scores below the bar on day 0.
    pub fn new(seed: u64) -> Self {
        EngineModel {
            rng: StdRng::seed_from_u64(seed ^ 0xa5a5),
            low_consensus_rate: 0.02,
        }
    }

    /// Draw the number of engines flagging one malware sample.
    pub fn detections_for_malware(&mut self) -> u32 {
        if self.rng.gen_bool(self.low_consensus_rate) {
            self.rng.gen_range(0..5)
        } else {
            self.rng.gen_range(12..56)
        }
    }

    /// The paper's corroboration rule.
    pub fn passes_bar(count: u32) -> bool {
        count >= 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_malware_passes_the_bar() {
        let mut m = EngineModel::new(3);
        let n = 2000;
        let pass = (0..n)
            .filter(|_| EngineModel::passes_bar(m.detections_for_malware()))
            .count();
        let rate = pass as f64 / n as f64;
        assert!((0.95..1.0).contains(&rate), "{rate}");
    }

    #[test]
    fn counts_stay_in_engine_range() {
        let mut m = EngineModel::new(4);
        for _ in 0..500 {
            let c = m.detections_for_malware();
            assert!(c as usize <= TOTAL_ENGINES);
        }
    }

    #[test]
    fn bar_is_five() {
        assert!(!EngineModel::passes_bar(4));
        assert!(EngineModel::passes_bar(5));
    }
}
