//! AV-engine corroboration model.
//!
//! The corpus-vetting rule (§2.2) requires ≥ 5 of the ~75 AV engines to
//! flag a file as malware. Real IoT malware is detected broadly but not
//! unanimously; the model draws a per-sample engine count with a small
//! chance of a low-consensus file (which the pipeline then drops,
//! exercising the filter).
//!
//! The draw is a **pure function of `(seed, day, sample_id)`**: each
//! sample gets its own [`sub_seed`]-derived generator under
//! [`DOMAIN_AV_ENGINES`], so the count does not depend on how many
//! samples were scanned before it. That is what lets the pipeline's
//! day-epoch shards each carry their own `EngineModel` and still produce
//! byte-identical datasets after the epoch merge.

use malnet_prng::rngs::StdRng;
use malnet_prng::{sub_seed, Rng, SeedableRng};

/// Engines on the scanning service (paper: 75 as of Aug 2022).
pub const TOTAL_ENGINES: usize = 75;

/// Sub-seed domain for per-sample AV-consensus draws. Lives in the
/// workspace-wide `0x5eed_…` family whose uniqueness `malnet-lint`
/// checks across crates.
const DOMAIN_AV_ENGINES: u64 = 0x5eed_0000_0000_0009;

/// The seed of one sample's AV-consensus RNG stream. Public so the
/// pipeline's seed-collision audit can enumerate it alongside every
/// other sub-seed a study draws.
pub fn engine_seed(master: u64, day: u32, sample_id: u64) -> u64 {
    sub_seed(master ^ DOMAIN_AV_ENGINES, day, sample_id)
}

/// Per-sample AV consensus model.
#[derive(Debug, Clone)]
pub struct EngineModel {
    seed: u64,
    /// Fraction of genuinely-malicious files that still fall below the
    /// 5-engine bar (fresh packers, rare families).
    pub low_consensus_rate: f64,
}

impl EngineModel {
    /// Default model: ~2% of real malware scores below the bar on day 0.
    pub fn new(seed: u64) -> Self {
        EngineModel {
            seed,
            low_consensus_rate: 0.02,
        }
    }

    /// Draw the number of engines flagging one malware sample — a pure
    /// function of `(seed, day, sample_id)`.
    pub fn detections_for_malware(&self, day: u32, sample_id: u64) -> u32 {
        let mut rng = StdRng::seed_from_u64(engine_seed(self.seed, day, sample_id));
        if rng.gen_bool(self.low_consensus_rate) {
            rng.gen_range(0..5)
        } else {
            rng.gen_range(12..56)
        }
    }

    /// The paper's corroboration rule.
    pub fn passes_bar(count: u32) -> bool {
        count >= 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_malware_passes_the_bar() {
        let m = EngineModel::new(3);
        let n = 2000u64;
        let pass = (0..n)
            .filter(|&id| EngineModel::passes_bar(m.detections_for_malware(0, id)))
            .count();
        let rate = pass as f64 / n as f64;
        assert!((0.95..1.0).contains(&rate), "{rate}");
    }

    #[test]
    fn counts_stay_in_engine_range() {
        let m = EngineModel::new(4);
        for id in 0..500u64 {
            let c = m.detections_for_malware(7, id);
            assert!(c as usize <= TOTAL_ENGINES);
        }
    }

    #[test]
    fn draw_is_pure_per_coordinates() {
        let m = EngineModel::new(9);
        // Same (day, sample) → same count no matter the call order; the
        // epoch shards rely on exactly this.
        let a = m.detections_for_malware(3, 41);
        let _ = m.detections_for_malware(5, 12);
        assert_eq!(a, m.detections_for_malware(3, 41));
    }

    #[test]
    fn bar_is_five() {
        assert!(!EngineModel::passes_bar(4));
        assert!(EngineModel::passes_bar(5));
    }
}
