//! The vendor-feed model: a VirusTotal-like "query at date" API.
//!
//! ## Model
//!
//! Each C2 address registered with the database gets:
//!
//! * a **public-knowledge day** `K`: the first day *any* feed flags it.
//!   Calibrated against Table 3: for IP addresses, 86.7% have `K ≤
//!   discovery day` (13.3% same-day miss) and 98.5% are flagged by the
//!   paper's late re-query; DNS names miss far more often (57.6% /
//!   65% eventually-flagged).
//! * a **visibility score** `s ∈ (0, 1]`: which vendors pick it up once
//!   public. Vendor `v` flags the address iff `s ≥ 1 - coverage(v)`,
//!   with a small per-vendor extra lag. Coverage values for the top 20
//!   vendors come straight from Table 7 (counts per 1000 C2 IPs);
//!   another 24 vendors get low coverage; the remaining 45 never flag
//!   IoT C2s — matching "only 44 vendors could flag ... at least 1 C2".

use std::collections::BTreeMap;

use malnet_prng::rngs::StdRng;
use malnet_prng::{fnv1a, sub_seed, Rng, SeedableRng};

/// Total vendor feeds on the VT-like service (paper: 89).
pub const TOTAL_VENDORS: usize = 89;

/// Sub-seed domain for per-address feed-knowledge draws. Lives in the
/// workspace-wide `0x5eed_…` family whose uniqueness `malnet-lint`
/// checks across crates.
const DOMAIN_VENDOR_ADDR: u64 = 0x5eed_0000_0000_0008;

/// The seed of one address's feed-knowledge RNG stream. Public so the
/// pipeline's seed-collision audit can enumerate it alongside every
/// other sub-seed a study draws.
pub fn vendor_addr_seed(master: u64, addr: &str) -> u64 {
    sub_seed(master ^ DOMAIN_VENDOR_ADDR, 0, fnv1a(addr.as_bytes()))
}

/// The top-20 vendors of Table 7 with their per-1000 detection counts.
pub const TABLE7_VENDORS: [(&str, u32); 20] = [
    ("0xSI_f33d", 799),
    ("Kaspersky", 798),
    ("PhishLabs", 798),
    ("Netcraft", 746),
    ("SafeToOpen", 799),
    ("Forcepoint ThreatSeeker", 745),
    ("AutoShun", 799),
    ("CRDF", 728),
    ("Lumu", 799),
    ("Comodo Valkyrie Verdict", 697),
    ("StopBadware", 798),
    ("Fortinet", 681),
    ("Cyan", 799),
    ("Webroot", 683),
    ("NotMining", 798),
    ("Avira", 568),
    ("CMC Threat Intelligence", 578),
    ("CyRadar", 387),
    ("G-Data", 324),
    ("ESTsecurity", 340),
];

/// Calibration parameters (defaults reproduce Table 3).
#[derive(Debug, Clone)]
pub struct FeedParams {
    /// P(an IP-based C2 is already known on its discovery day).
    pub ip_same_day: f64,
    /// P(an IP-based C2 is known by the late re-query).
    pub ip_eventually: f64,
    /// P(a DNS-based C2 is already known on its discovery day).
    pub dns_same_day: f64,
    /// P(a DNS-based C2 is known by the late re-query).
    pub dns_eventually: f64,
    /// Maximum lag (days) for late-flagged addresses.
    pub max_lag_days: u32,
}

impl Default for FeedParams {
    fn default() -> Self {
        FeedParams {
            ip_same_day: 1.0 - 0.133,
            ip_eventually: 1.0 - 0.015,
            dns_same_day: 1.0 - 0.576,
            dns_eventually: 1.0 - 0.35,
            max_lag_days: 55,
        }
    }
}

/// A vendor feed.
#[derive(Debug, Clone)]
pub struct Vendor {
    /// Feed name.
    pub name: String,
    /// Fraction of publicly-known C2s this feed flags (0..=1).
    pub coverage: f64,
    /// Extra reporting lag of this feed, days.
    pub lag_days: u32,
}

#[derive(Debug, Clone)]
struct AddrRecord {
    /// Was the address registered as a DNS name (vs. a hardcoded IP)?
    is_dns: bool,
    /// The pipeline's discovery day the record was derived from — the
    /// earliest registration seen so far. A re-registration with an
    /// *earlier* day ([`VendorDb::absorb`]) re-derives the record.
    discovery_day: u32,
    /// First day any feed knows the address; `None` = never.
    known_day: Option<u32>,
    /// Visibility score in (0, 1].
    visibility: f64,
    /// Index of the vendor that first reported it (always flags it once
    /// known, regardless of visibility).
    discoverer: usize,
}

/// One epoch's worth of feed knowledge: every address the epoch
/// registered, with its earliest local discovery day. The payload of
/// [`VendorDb::delta`] / [`VendorDb::absorb`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedDelta {
    /// `(addr, is_dns, discovery_day)` in address order.
    pub registrations: Vec<(String, bool, u32)>,
}

/// The result of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Vendors flagging the address as malicious at the query date.
    pub vendors: Vec<String>,
}

impl Verdict {
    /// Is the address flagged by at least one feed?
    pub fn is_malicious(&self) -> bool {
        !self.vendors.is_empty()
    }

    /// Number of flagging vendors.
    pub fn count(&self) -> usize {
        self.vendors.len()
    }
}

/// The vendor database.
///
/// Every record is a **pure function of `(seed, addr, is_dns,
/// discovery_day)`**: each address draws from its own
/// [`vendor_addr_seed`]-derived generator, never from shared RNG state.
/// Registration order therefore cannot influence any record, which is
/// what makes the day-epoch shards mergeable — each epoch accrues
/// knowledge into its own `VendorDb` and the coordinator folds the
/// [`FeedDelta`]s back together ([`VendorDb::absorb`]) with
/// earliest-discovery-day-wins semantics, reproducing the sequential
/// database exactly regardless of merge order.
#[derive(Debug, Clone)]
pub struct VendorDb {
    /// All feeds (89), in fixed order.
    pub vendors: Vec<Vendor>,
    params: FeedParams,
    seed: u64,
    /// Ordered so `canonical_dump` walks addresses in byte order with
    /// no explicit sort.
    records: BTreeMap<String, AddrRecord>,
}

impl VendorDb {
    /// Build the vendor universe with default calibration.
    pub fn new(seed: u64) -> Self {
        Self::with_params(seed, FeedParams::default())
    }

    /// Build with explicit calibration (ablation studies).
    pub fn with_params(seed: u64, params: FeedParams) -> Self {
        let mut vendors: Vec<Vendor> = TABLE7_VENDORS
            .iter()
            .map(|(name, per1000)| Vendor {
                name: (*name).to_string(),
                coverage: f64::from(*per1000) / 1000.0,
                lag_days: 0,
            })
            .collect();
        // 24 long-tail feeds that occasionally flag IoT C2s.
        for i in 0..24 {
            vendors.push(Vendor {
                name: format!("TailIntel-{i:02}"),
                coverage: 0.02 + 0.01 * f64::from(i),
                lag_days: 1 + i % 5,
            });
        }
        // 45 feeds that never flag IoT C2s (web/phishing-focused).
        for i in 0..45 {
            vendors.push(Vendor {
                name: format!("WebRep-{i:02}"),
                coverage: 0.0,
                lag_days: 0,
            });
        }
        assert_eq!(vendors.len(), TOTAL_VENDORS);
        VendorDb {
            vendors,
            params,
            seed,
            records: BTreeMap::new(),
        }
    }

    /// Derive one address's record from its private RNG stream. The
    /// draw *sequence* (knowledge coin, day offset, visibility,
    /// discoverer pick) is fixed; only `discovery_day` shifts where the
    /// knowledge day lands, so re-deriving with an earlier day keeps
    /// every other property of the record.
    fn derive_record(&self, addr: &str, is_dns: bool, discovery_day: u32) -> AddrRecord {
        let (p_same, p_event) = if is_dns {
            (self.params.dns_same_day, self.params.dns_eventually)
        } else {
            (self.params.ip_same_day, self.params.ip_eventually)
        };
        let mut rng = StdRng::seed_from_u64(vendor_addr_seed(self.seed, addr));
        let u: f64 = rng.gen();
        let known_day = if u < p_same {
            // Known before or at discovery.
            Some(discovery_day.saturating_sub(rng.gen_range(0..30)))
        } else if u < p_event {
            // Flagged later with a lag.
            Some(discovery_day + 1 + rng.gen_range(0..self.params.max_lag_days))
        } else {
            None
        };
        let visibility = rng.gen_range(0.05f64..1.0);
        // Coverage-weighted choice of the feed that first reported it.
        let total: f64 = self.vendors.iter().map(|v| v.coverage).sum();
        let mut pick = rng.gen_range(0.0..total);
        let mut discoverer = 0;
        for (i, v) in self.vendors.iter().enumerate() {
            if pick < v.coverage {
                discoverer = i;
                break;
            }
            pick -= v.coverage;
        }
        AddrRecord {
            is_dns,
            discovery_day,
            known_day,
            visibility,
            discoverer,
        }
    }

    /// Register a C2 address with its pipeline discovery day. Idempotent:
    /// re-registration keeps the first record (mirrors reality — the
    /// feeds don't care how often we look).
    pub fn register(&mut self, addr: &str, is_dns: bool, discovery_day: u32) {
        if self.records.contains_key(addr) {
            return;
        }
        let rec = self.derive_record(addr, is_dns, discovery_day);
        self.records.insert(addr.to_string(), rec);
    }

    /// Everything this database learned, as a mergeable delta: the
    /// registered addresses with their discovery days, in address order.
    pub fn delta(&self) -> FeedDelta {
        FeedDelta {
            registrations: self
                .records
                .iter()
                .map(|(a, r)| (a.clone(), r.is_dns, r.discovery_day))
                .collect(),
        }
    }

    /// Fold another database's [`FeedDelta`] into this one.
    ///
    /// Earliest-discovery-day wins: an address already present is
    /// re-derived only when the delta saw it strictly earlier. Because
    /// records are pure per address, absorbing any permutation of a set
    /// of deltas yields the identical database — the property the
    /// epoch-merge permutation proptest in `malnet-core` pins down.
    pub fn absorb(&mut self, delta: &FeedDelta) {
        for (addr, is_dns, day) in &delta.registrations {
            match self.records.get(addr) {
                Some(rec) if rec.discovery_day <= *day => {}
                _ => {
                    let rec = self.derive_record(addr, *is_dns, *day);
                    self.records.insert(addr.clone(), rec);
                }
            }
        }
    }

    /// A canonical, byte-stable serialization of the vendor state.
    ///
    /// The backing map is a `BTreeMap`, so records come out sorted by
    /// address with no per-process hasher influence. Two `VendorDb`s
    /// that produce identical dumps have registered the same addresses
    /// with the same RNG draws — the parallel-determinism suite compares
    /// these across `parallelism` settings.
    pub fn canonical_dump(&self) -> String {
        let mut out = String::new();
        for (k, r) in &self.records {
            out.push_str(&format!("{k} => {r:?}\n"));
        }
        out
    }

    /// Query the feeds as of `day` — the VT-equivalent call.
    pub fn query(&self, addr: &str, day: u32) -> Verdict {
        let Some(rec) = self.records.get(addr) else {
            return Verdict { vendors: vec![] };
        };
        let Some(known) = rec.known_day else {
            return Verdict { vendors: vec![] };
        };
        if day < known {
            return Verdict { vendors: vec![] };
        }
        let vendors = self
            .vendors
            .iter()
            .enumerate()
            .filter(|(i, v)| {
                *i == rec.discoverer
                    || (v.coverage > 0.0
                        && rec.visibility >= 1.0 - v.coverage
                        && day >= known + v.lag_days)
            })
            .map(|(_, v)| v.name.clone())
            .collect();
        Verdict { vendors }
    }

    /// Number of vendors with nonzero coverage (paper: 44).
    pub fn active_vendor_count(&self) -> usize {
        self.vendors.iter().filter(|v| v.coverage > 0.0).count()
    }

    /// Per-vendor detection counts over a set of addresses at `day`
    /// (regenerates Table 7).
    pub fn vendor_counts(&self, addrs: &[String], day: u32) -> Vec<(String, u32)> {
        let mut counts: BTreeMap<&str, u32> = BTreeMap::new();
        for a in addrs {
            for v in self.query(a, day).vendors {
                // Count by name; names are unique.
                let name = self
                    .vendors
                    .iter()
                    .find(|x| x.name == v)
                    .map(|x| x.name.as_str())
                    .unwrap_or("?");
                *counts.entry(name).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(String, u32)> = counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_addrs(n: usize, is_dns: bool) -> (VendorDb, Vec<String>) {
        let mut db = VendorDb::new(1);
        let addrs: Vec<String> = (0..n)
            .map(|i| {
                if is_dns {
                    format!("c2-{i}.example.net")
                } else {
                    format!("10.1.{}.{}", i / 250, i % 250 + 1)
                }
            })
            .collect();
        for a in &addrs {
            db.register(a, is_dns, 100);
        }
        (db, addrs)
    }

    #[test]
    fn vendor_universe_shape() {
        let db = VendorDb::new(0);
        assert_eq!(db.vendors.len(), 89);
        assert_eq!(db.active_vendor_count(), 44);
    }

    #[test]
    fn ip_same_day_miss_rate_near_13_percent() {
        let (db, addrs) = db_with_addrs(2000, false);
        let missed = addrs
            .iter()
            .filter(|a| !db.query(a, 100).is_malicious())
            .count();
        let rate = missed as f64 / addrs.len() as f64;
        assert!((0.10..0.17).contains(&rate), "ip same-day miss {rate}");
    }

    #[test]
    fn dns_same_day_miss_rate_near_58_percent() {
        let (db, addrs) = db_with_addrs(2000, true);
        let missed = addrs
            .iter()
            .filter(|a| !db.query(a, 100).is_malicious())
            .count();
        let rate = missed as f64 / addrs.len() as f64;
        assert!((0.52..0.64).contains(&rate), "dns same-day miss {rate}");
    }

    #[test]
    fn late_query_recovers_most_misses() {
        let (db, addrs) = db_with_addrs(2000, false);
        let missed_late = addrs
            .iter()
            .filter(|a| !db.query(a, 100 + 120).is_malicious())
            .count();
        let rate = missed_late as f64 / addrs.len() as f64;
        assert!(rate < 0.04, "late miss {rate}");
    }

    #[test]
    fn unknown_address_is_clean() {
        let db = VendorDb::new(5);
        assert!(!db.query("203.0.113.7", 400).is_malicious());
    }

    #[test]
    fn detection_is_monotone_in_time() {
        let (db, addrs) = db_with_addrs(300, false);
        for a in &addrs {
            let early = db.query(a, 100).count();
            let late = db.query(a, 300).count();
            assert!(late >= early, "{a}: {early} -> {late}");
        }
    }

    #[test]
    fn vendor_counts_follow_coverage_order() {
        let (db, addrs) = db_with_addrs(1000, false);
        let counts = db.vendor_counts(&addrs, 400);
        // Highest-coverage vendors top the table; the top count is near
        // the paper's ~800/1000 and clearly above the tail.
        let top = counts.first().unwrap();
        assert!(top.1 > 700, "{top:?}");
        let gdata = counts.iter().find(|(n, _)| n == "G-Data").unwrap();
        assert!(gdata.1 < top.1);
        assert!((250..450).contains(&gdata.1), "{gdata:?}");
    }

    #[test]
    fn registration_is_idempotent() {
        let mut db = VendorDb::new(9);
        db.register("1.2.3.4", false, 50);
        let v1 = db.query("1.2.3.4", 60);
        db.register("1.2.3.4", false, 55);
        assert_eq!(db.query("1.2.3.4", 60), v1);
    }

    #[test]
    fn registration_order_cannot_influence_records() {
        let mut a = VendorDb::new(7);
        a.register("1.2.3.4", false, 10);
        a.register("c2.example.net", true, 20);
        let mut b = VendorDb::new(7);
        b.register("c2.example.net", true, 20);
        b.register("1.2.3.4", false, 10);
        assert_eq!(a.canonical_dump(), b.canonical_dump());
    }

    #[test]
    fn absorb_merges_deltas_with_earliest_day_winning() {
        // The sequential reference: one db sees every registration in
        // day order.
        let mut seq = VendorDb::new(11);
        seq.register("5.6.7.8", false, 3);
        seq.register("bot.example.org", true, 5);
        seq.register("9.9.9.9", false, 8);
        // Two "epochs" that saw overlapping slices, folded in either
        // order.
        let mut e1 = VendorDb::new(11);
        e1.register("5.6.7.8", false, 3);
        e1.register("bot.example.org", true, 5);
        let mut e2 = VendorDb::new(11);
        e2.register("bot.example.org", true, 9);
        e2.register("9.9.9.9", false, 8);
        let mut fwd = VendorDb::new(11);
        fwd.absorb(&e1.delta());
        fwd.absorb(&e2.delta());
        let mut rev = VendorDb::new(11);
        rev.absorb(&e2.delta());
        rev.absorb(&e1.delta());
        assert_eq!(fwd.canonical_dump(), seq.canonical_dump());
        assert_eq!(rev.canonical_dump(), seq.canonical_dump());
    }

    #[test]
    fn before_discovery_unknown_addresses_mostly_known_already() {
        // Addresses flagged on day 0 were often known *before* discovery
        // (the known_day can precede it).
        let (db, addrs) = db_with_addrs(500, false);
        let known_before = addrs
            .iter()
            .filter(|a| db.query(a, 99).is_malicious())
            .count();
        assert!(known_before > 200);
    }
}
