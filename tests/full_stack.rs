//! Cross-crate integration tests at the facade level: every layer of the
//! reproduction participates (generator → ELF → emulator → simulated
//! network → pcap bytes → wire re-parse → analysis).

use std::net::Ipv4Addr;

use malnet::botgen::binary::emit_elf;
use malnet::botgen::c2service::{install_c2, C2Config, RespondMode};
use malnet::botgen::programs::compile;
use malnet::botgen::spec::{BehaviorSpec, C2Endpoint};
use malnet::botgen::world::{Calibration, World, WorldConfig};
use malnet::core::ddos;
use malnet::netsim::net::Network;
use malnet::netsim::time::{SimDuration, SimTime};
use malnet::protocols::{AttackCommand, AttackMethod, Family};
use malnet::sandbox::{AnalysisMode, Sandbox, SandboxConfig};
use malnet::wire::pcap;

const BOT: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 2);
const C2: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 5);

/// The capture produced by the sandbox must be a byte-valid libpcap file
/// that the wire crate can fully re-parse: what the analyst opens in
/// Wireshark is exactly what the simulator sent.
#[test]
fn sandbox_pcap_is_bit_exact_through_wire_reparse() {
    let spec = BehaviorSpec {
        c2: vec![(C2Endpoint::Ip(C2), 23)],
        recv_timeout_ms: 5000,
        ..Default::default()
    };
    let elf = emit_elf(&compile(&spec), b"roundtrip");
    let mut sb = Sandbox::new(Network::new(SimTime::EPOCH, 3), SandboxConfig::default());
    let art = sb.execute(&elf, SimDuration::from_secs(60));
    assert!(!art.pcap.is_empty());
    let (packets, skipped) = pcap::parse_capture(&art.pcap).expect("valid pcap");
    assert_eq!(skipped, 0, "every captured frame re-parses");
    assert!(!packets.is_empty());
    // Re-serializing the parsed packets reproduces the identical file.
    let rewritten = pcap::to_bytes(&packets);
    assert_eq!(rewritten, art.pcap);
}

/// The full command loop crosses five crates: protocols encode at the C2
/// service (botgen), the MIPS binary decodes and attacks (mips+sandbox),
/// the capture goes through wire, and core's extractor recovers the
/// identical command struct.
#[test]
fn command_roundtrips_through_all_layers() {
    for (family, method, port) in [
        (Family::Mirai, AttackMethod::Vse, 27015),
        (Family::Gafgyt, AttackMethod::UdpFlood, 80),
        (Family::Daddyl33t, AttackMethod::SynFlood, 443),
    ] {
        let command = AttackCommand {
            method,
            target: Ipv4Addr::new(198, 51, 100, 5),
            port,
            duration_secs: 3,
        };
        let mut net = Network::new(SimTime::EPOCH, 11);
        install_c2(
            &mut net,
            C2,
            C2Config {
                family,
                port: 23,
                respond: RespondMode::Always,
                commands_on_login: vec![(SimDuration::from_secs(10), command)],
                serve_loader: None,
            },
        );
        let spec = BehaviorSpec {
            family,
            c2: vec![(C2Endpoint::Ip(C2), 23)],
            recv_timeout_ms: 8000,
            ..Default::default()
        };
        let elf = emit_elf(&compile(&spec), b"loop");
        let mut sb = Sandbox::new(
            net,
            SandboxConfig {
                mode: AnalysisMode::Restricted { allowed: vec![C2] },
                handshaker_threshold: None,
                ..Default::default()
            },
        );
        let art = sb.execute(&elf, SimDuration::from_secs(90));
        let extracted = ddos::extract(&art.packets(), BOT, C2, Some(family), 100);
        let found = extracted
            .iter()
            .find(|e| e.command == command)
            .unwrap_or_else(|| panic!("{family}: {command} not recovered: {extracted:?}"));
        assert!(found.verified, "{family}: command must verify");
    }
}

/// World generation and the facade's re-exports stay coherent: AS lookups
/// from netsim agree with world placement, and ELF bytes parse with the
/// mips crate.
#[test]
fn world_is_consistent_across_crates() {
    let world = World::generate(WorldConfig {
        seed: 3,
        n_samples: 40,
        cal: Calibration::default(),
    });
    for c2 in world.c2s.iter().take(50) {
        if let Some(asn) = world.asdb.asn_of(c2.host_ip) {
            assert_eq!(asn, c2.asn, "AS registry agrees with placement");
        }
    }
    for s in world.samples.iter().take(10) {
        let elf = malnet::mips::elf::ElfFile::parse(&s.elf).expect("corpus binaries parse");
        assert_eq!(elf.entry, malnet::botgen::stub::TEXT_BASE);
        // Family banner is discoverable by the strings pass.
        let label = malnet::intel::yara_label(&s.elf).expect("labelable");
        assert_eq!(label, s.family.label());
    }
}

/// Determinism across the whole stack: same seed, same world, same
/// run, identical captures.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let world = World::generate(WorldConfig {
            seed: 9,
            n_samples: 10,
            cal: Calibration::default(),
        });
        let sample = &world.samples[0];
        let (net, _) = world.network_for_day(sample.publish_day, 1);
        let mut sb = Sandbox::new(net, SandboxConfig::default());
        sb.execute(&sample.elf, SimDuration::from_secs(45)).pcap
    };
    assert_eq!(run(), run());
}

/// Fault injection end to end: heavy packet loss degrades but never
/// wedges the stack — the sample still terminates and the capture stays
/// parseable.
#[test]
fn lossy_network_degrades_gracefully() {
    let spec = BehaviorSpec {
        c2: vec![(C2Endpoint::Ip(C2), 23)],
        recv_timeout_ms: 3000,
        ..Default::default()
    };
    let elf = emit_elf(&compile(&spec), b"lossy");
    let mut net = Network::new(SimTime::EPOCH, 5);
    net.faults.loss = 0.9;
    let mut sb = Sandbox::new(net, SandboxConfig::default());
    let art = sb.execute(&elf, SimDuration::from_secs(60));
    let (packets, skipped) = pcap::parse_capture(&art.pcap).expect("parseable");
    assert_eq!(skipped, 0);
    assert!(!packets.is_empty(), "SYN attempts still visible at the tap");
}
