//! A miniature end-to-end measurement study (the paper, in 30 seconds).
//!
//! Generates a 120-sample world, runs the complete MalNet daily loop —
//! collection, vetting, contained activation, exploit extraction,
//! feed cross-validation, liveness tracking, restricted DDoS sessions,
//! and the probing study — then prints the headline numbers and the
//! instrument scores against ground truth.
//!
//! Run: `cargo run --release --example daily_study`

use malnet::botgen::world::{Calibration, World, WorldConfig};
use malnet::core::eval::evaluate;
use malnet::core::{analysis, Pipeline, PipelineOpts};

fn main() {
    let world = World::generate(WorldConfig {
        seed: 42,
        n_samples: 120,
        cal: Calibration::default(),
    });
    println!(
        "world: {} samples over {} publish days; {} C2 servers; {} planned attacks",
        world.samples.len(),
        world.publish_days().len(),
        world.c2s.len(),
        world
            .attacks
            .iter()
            .map(|a| a.commands.len())
            .sum::<usize>()
    );

    let opts = PipelineOpts {
        max_samples: Some(120),
        ..PipelineOpts::fast()
    };
    let (data, _vendors) = Pipeline::new(opts).run(&world);

    println!("\n{}", data.table1());

    let t3 = analysis::table3(&data);
    println!(
        "\nthreat-intel same-day miss: {:.1}% all / {:.1}% IP / {:.1}% DNS (paper: 15.3/13.3/57.6)",
        t3.all_day0, t3.ip_day0, t3.dns_day0
    );

    let life = analysis::lifespan_cdf(&data, false);
    println!(
        "C2 lifespans: {:.0}% one-day, mean {:.1} d (paper: ~80%, ~4 d)",
        life.at(1) * 100.0,
        life.mean()
    );

    let h = analysis::headline(&data);
    println!(
        "DDoS: {} commands / {} C2s / {} samples (paper: 42/17/20)",
        h.ddos_commands, h.ddos_c2s, h.ddos_samples
    );

    println!(
        "\ninstrument scores vs ground truth:\n{}",
        evaluate(&world, &data)
    );
}
