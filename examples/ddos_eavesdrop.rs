//! Eavesdropping on a live DDoS attack (paper §2.5 / §5).
//!
//! Installs a live Mirai C2 on the simulated Internet, runs a bot binary
//! in the restricted sandbox (only C2 traffic may leave), and decodes the
//! attack command from the session capture with both of the paper's
//! detectors — the protocol profiler and the 100-pps behavioural
//! heuristic — while the attack itself stays contained.
//!
//! Run: `cargo run --release --example ddos_eavesdrop`

use std::net::Ipv4Addr;

use malnet::botgen::binary::emit_elf;
use malnet::botgen::c2service::{install_c2, C2Config, RespondMode};
use malnet::botgen::programs::compile;
use malnet::botgen::spec::{BehaviorSpec, C2Endpoint};
use malnet::core::ddos;
use malnet::netsim::net::Network;
use malnet::netsim::time::{SimDuration, SimTime};
use malnet::protocols::{AttackCommand, AttackMethod, Family};
use malnet::sandbox::{AnalysisMode, Sandbox, SandboxConfig};

fn main() {
    let c2_ip = Ipv4Addr::new(10, 1, 0, 5);
    let bot_ip = Ipv4Addr::new(100, 64, 0, 2);
    let target = Ipv4Addr::new(203, 0, 113, 99);

    // --- the botmaster side: a C2 that will order a UDP flood ----------
    let mut net = Network::new(SimTime::EPOCH, 9);
    let command = AttackCommand {
        method: AttackMethod::UdpFlood,
        target,
        port: 4567,
        duration_secs: 5,
    };
    let log = install_c2(
        &mut net,
        c2_ip,
        C2Config {
            family: Family::Mirai,
            port: 23,
            respond: RespondMode::Always,
            commands_on_login: vec![(SimDuration::from_secs(30), command)],
            serve_loader: None,
        },
    );

    // --- the bot binary --------------------------------------------------
    let spec = BehaviorSpec {
        family: Family::Mirai,
        c2: vec![(C2Endpoint::Ip(c2_ip), 23)],
        recv_timeout_ms: 10_000,
        ..Default::default()
    };
    let elf = emit_elf(&compile(&spec), b"eavesdrop");

    // --- restricted session: only the C2 is reachable --------------------
    let mut sb = Sandbox::new(
        net,
        SandboxConfig {
            bot_ip,
            mode: AnalysisMode::Restricted {
                allowed: vec![c2_ip],
            },
            handshaker_threshold: None,
            ..Default::default()
        },
    );
    let art = sb.execute(&elf, SimDuration::from_secs(120));
    let packets = art.packets();
    println!(
        "session capture: {} packets; C2 issued {} command(s)",
        packets.len(),
        log.lock().unwrap().commands.len()
    );

    // --- the analyst side -------------------------------------------------
    let extracted = ddos::extract(&packets, bot_ip, c2_ip, Some(Family::Mirai), 100);
    for e in &extracted {
        println!(
            "\ndecoded command : {}\ndetection       : {:?}\nverified        : {} \
             \npeak flood rate : {} pps (threshold 100)",
            e.command, e.detection, e.verified, e.measured_pps
        );
    }
    let flood = packets.iter().filter(|(_, p)| p.dst == target).count();
    let net = sb.into_network();
    println!(
        "\nflood packets captured: {flood}; packets that escaped containment: {}",
        net.stats.blackholed
    );
    assert_eq!(net.stats.blackholed, 0, "containment must hold");
}
