//! The active-probing study in miniature (paper §2.3b / Figure 4).
//!
//! Generates a small world (whose probing theatre contains six suspicious
//! /24s and seven elusive C2 servers), weaponizes two corpus samples, and
//! sweeps the subnets for two virtual days on the paper's 4-hour cadence.
//! Prints the per-server response raster and the elusiveness statistics.
//!
//! Run: `cargo run --release --example probe_subnet`

use malnet::botgen::world::{Calibration, World, WorldConfig, PROBE_PORTS};
use malnet::core::analysis;
use malnet::core::datasets::Datasets;
use malnet::core::prober::{run_probing, ProbeConfig};
use malnet::protocols::Family;

fn main() {
    let world = World::generate(WorldConfig {
        seed: 77,
        n_samples: 80,
        cal: Calibration::default(),
    });
    println!(
        "probing theatre: {} subnets, ports {:?}, window starts day {}",
        world.probe_subnets.len(),
        PROBE_PORTS,
        world.probe_start_day
    );

    // Weaponize one Mirai and one Gafgyt sample (clean call-home).
    let weapons: Vec<Vec<u8>> = [Family::Mirai, Family::Gafgyt]
        .iter()
        .filter_map(|f| {
            world
                .samples
                .iter()
                .find(|s| {
                    s.family == *f && !s.corrupted && s.spec.exploits.is_empty() && !s.spec.evasive
                })
                .map(|s| s.elf.clone())
        })
        .collect();
    println!("weaponized samples: {}", weapons.len());

    let cfg = ProbeConfig {
        rounds: 12, // two days at 6 probes/day
        hosts_per_subnet: 100,
        ..ProbeConfig::from_world(&world)
    };
    let tel = malnet::telemetry::Telemetry::enabled();
    let probed = run_probing(&world, &weapons, &cfg, 1, &tel);
    let report = tel.report();
    println!(
        "probes sent: {}, listeners found: {}, engagements: {}",
        report.counter("prober.probes_sent").unwrap_or(0),
        report.counter("prober.listeners_found").unwrap_or(0),
        report.counter("prober.engagements").unwrap_or(0),
    );

    let data = Datasets {
        probed,
        ..Default::default()
    };
    println!("\nresponse raster (# = engaged, . = silent):");
    for p in &data.probed {
        let raster: String = p
            .probes
            .iter()
            .map(|(_, e)| if *e { '#' } else { '.' })
            .collect();
        println!("  {:>15}:{:<5} |{raster}|", p.ip.to_string(), p.port);
    }
    let f = analysis::fig4(&data, 6);
    println!(
        "\nservers found: {}; probe measurements: {}\n\
         silent after a successful probe: {:.1}% (paper: 91%)\n\
         any server answering a full day of probes: {} (paper: never)",
        f.servers, f.measurements, f.silent_after_success, f.any_full_day
    );
}
