//! Static dissection of a synthetic malware binary — what an analyst's
//! first pass (file/readelf/strings/objdump) sees.
//!
//! Run: `cargo run --release --example dissect`

use std::net::Ipv4Addr;

use malnet::botgen::binary::{emit_elf, extract_program};
use malnet::botgen::botvm;
use malnet::botgen::exploitdb::VulnId;
use malnet::botgen::programs::compile;
use malnet::botgen::spec::{BehaviorSpec, C2Endpoint, ExploitPlan};
use malnet::intel::{avclass2_label, yara_label};
use malnet::mips::dis;
use malnet::mips::elf::ElfFile;

fn main() {
    let spec = BehaviorSpec {
        c2: vec![(
            C2Endpoint::Domain("cnc.dyn-13.example-cdn.net".into()),
            48101,
        )],
        exploits: vec![ExploitPlan {
            vuln: VulnId::DlinkHnap,
            downloader: Ipv4Addr::new(45, 0, 3, 7),
            loader: "8UsA.sh".into(),
            full_gpon: true,
        }],
        ..Default::default()
    };
    let elf_bytes = emit_elf(&compile(&spec), b"dissect-demo");

    // --- file / readelf ----------------------------------------------------
    let elf = ElfFile::parse(&elf_bytes).expect("valid ELF");
    println!("ELF32 MSB executable, MIPS, entry {:#010x}", elf.entry);
    for seg in &elf.segments {
        println!(
            "  {:<8} vaddr {:#010x} filesz {:>6} memsz {:>6} {}{}R",
            seg.name,
            seg.vaddr,
            seg.data.len(),
            seg.memsz,
            if seg.executable { "X" } else { "-" },
            if seg.writable { "W" } else { "-" },
        );
    }

    // --- strings: the IoCs a static pass finds ------------------------------
    println!("\ninteresting strings:");
    for s in elf.strings(10) {
        if s.contains("http") || s.contains("HNAP") || s.contains("busybox") || s.contains(".sh") {
            println!("  {s}");
        }
    }

    // --- objdump: the head of the interpreter stub --------------------------
    let text = &elf.segments[0];
    println!("\n.text disassembly (first 12 instructions):");
    for line in dis::disassemble_all(&text.data[..48], text.vaddr) {
        println!("  {line}");
    }

    // --- the embedded behaviour program --------------------------------------
    let prog = extract_program(&elf_bytes).expect("config parses");
    let ops = botvm::decode_all(&prog.bytecode).expect("bytecode decodes");
    println!(
        "\nbot program: {} bytecode records, {} bytes of data blob",
        ops.len(),
        prog.blob.len()
    );
    for (i, op) in ops.iter().take(10).enumerate() {
        println!("  [{i:>3}] {op}");
    }

    // --- family labels --------------------------------------------------------
    println!(
        "\nYARA label: {:?}; AVClass2 label: {:?}",
        yara_label(&elf_bytes),
        avclass2_label(&elf_bytes)
    );
}
