//! Quickstart: analyze one synthetic IoT malware binary end to end.
//!
//! Builds a Mirai-style sample (a genuine MIPS32 ELF), activates it in
//! the contained sandbox, and prints what the MalNet instruments see:
//! the C2 address, the exploits the handshaker captured, and a slice of
//! the packet capture.
//!
//! Run: `cargo run --release --example quickstart`

use std::net::Ipv4Addr;

use malnet::botgen::binary::emit_elf;
use malnet::botgen::exploitdb::{self, VulnId};
use malnet::botgen::programs::compile;
use malnet::botgen::spec::{BehaviorSpec, C2Endpoint, ExploitPlan};
use malnet::core::c2detect::detect_c2;
use malnet::intel::yara_label;
use malnet::netsim::net::Network;
use malnet::netsim::time::{SimDuration, SimTime};
use malnet::sandbox::{AnalysisMode, Sandbox, SandboxConfig};

fn main() {
    // --- 1. a "freshly captured" sample ---------------------------------
    let c2 = Ipv4Addr::new(10, 1, 0, 5);
    let spec = BehaviorSpec {
        c2: vec![(C2Endpoint::Ip(c2), 23)],
        exploits: vec![ExploitPlan {
            vuln: VulnId::Gpon10561,
            downloader: c2,
            loader: "t8UsA2.sh".into(),
            full_gpon: true,
        }],
        scan_mask: 0x1f,
        scan_burst: 6,
        recv_timeout_ms: 5_000,
        ..Default::default()
    };
    let elf = emit_elf(&compile(&spec), b"quickstart");
    println!(
        "sample: {} bytes of ELF32/MIPS (big-endian, ET_EXEC)",
        elf.len()
    );
    println!("YARA family label: {:?}", yara_label(&elf));

    // --- 2. activate it in the contained sandbox ------------------------
    let mut sb = Sandbox::new(
        Network::new(SimTime::EPOCH, 1),
        SandboxConfig {
            mode: AnalysisMode::Contained,
            handshaker_threshold: Some(5),
            ..Default::default()
        },
    );
    let art = sb.execute(&elf, SimDuration::from_secs(600));
    println!(
        "\nsandbox run: exit={:?}, {} guest instructions, {} syscalls, {} packets captured",
        art.exit,
        art.instructions,
        art.syscalls,
        art.packets().len()
    );

    // --- 3. what the analyst sees ---------------------------------------
    println!("\nC2 candidates (CnCHunter-style detection):");
    for cand in detect_c2(&art, SandboxConfig::default().bot_ip) {
        println!(
            "  {}:{}  dns={}  attempts={}  family-from-traffic={:?}",
            cand.addr, cand.port, cand.dns, cand.attempts, cand.family_from_traffic
        );
    }

    println!("\nexploits captured by the handshaker:");
    for e in &art.exploits {
        let vulns = exploitdb::classify(&e.payload);
        let dl = exploitdb::extract_downloader(&e.payload);
        println!(
            "  victim {}:{} -> {vulns:?}, downloader {dl:?}",
            e.victim, e.port
        );
    }

    println!("\nfirst packets on the wire:");
    for (ts, p) in art.packets().iter().take(8) {
        println!("  {:>12} µs  {}", ts, p.summary());
    }
    println!("\n(the full capture is a valid pcap: art.pcap — open it in Wireshark)");
}
