//! # MalNet — a binary-centric network-level profiling of IoT malware
//!
//! A full Rust reproduction of *MalNet* (Davanian & Faloutsos, ACM IMC
//! 2022): the daily, binary-centric dynamic-analysis pipeline that turns
//! freshly-reported IoT malware binaries into network-level intelligence
//! about C2 servers, proliferation exploits and live DDoS attacks.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`wire`] | `malnet-wire` | packet wire formats + pcap I/O |
//! | [`netsim`] | `malnet-netsim` | the discrete-event Internet |
//! | [`mips`] | `malnet-mips` | MIPS32 ELF tooling + emulator |
//! | [`botgen`] | `malnet-botgen` | synthetic malware world model |
//! | [`protocols`] | `malnet-protocols` | C2 protocols + profilers |
//! | [`sandbox`] | `malnet-sandbox` | CnCHunter-style sandbox |
//! | [`intel`] | `malnet-intel` | threat-intelligence feed models |
//! | [`core`] | `malnet-core` | the MalNet pipeline itself |
//! | [`telemetry`] | `malnet-telemetry` | spans, counters, run reports |
//!
//! ## Quickstart
//!
//! ```
//! use malnet::botgen::world::{World, WorldConfig, Calibration};
//! use malnet::core::{Pipeline, PipelineOpts};
//!
//! // A miniature study: 8 samples through the full daily loop.
//! let world = World::generate(WorldConfig {
//!     seed: 7,
//!     n_samples: 8,
//!     cal: Calibration::default(),
//! });
//! let opts = PipelineOpts {
//!     max_samples: Some(8),
//!     run_probing: false,
//!     ..PipelineOpts::fast()
//! };
//! let (datasets, _feeds) = Pipeline::new(opts).run(&world);
//! assert_eq!(datasets.samples.len(), 8);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the table/figure regeneration harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use malnet_botgen as botgen;
pub use malnet_core as core;
pub use malnet_intel as intel;
pub use malnet_mips as mips;
pub use malnet_netsim as netsim;
pub use malnet_protocols as protocols;
pub use malnet_sandbox as sandbox;
pub use malnet_telemetry as telemetry;
pub use malnet_wire as wire;
